//! In-process run summary and the human-readable table renderer.

use std::collections::BTreeMap;

/// Aggregated timings of one span path, merged across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Hierarchical path (`train_step/d_forward`).
    pub path: String,
    /// Number of distinct threads that recorded this path.
    pub threads: u32,
    /// Completed scopes across all threads.
    pub count: u64,
    /// Total nanoseconds across all scopes.
    pub total_ns: u64,
    /// Fastest scope.
    pub min_ns: u64,
    /// Slowest scope.
    pub max_ns: u64,
}

impl SpanSummary {
    /// Mean nanoseconds per scope (`0` when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Percentile snapshot of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 90th percentile.
    pub p90: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
}

/// Everything a finished run aggregated, returned by
/// [`crate::TelemetryGuard::finish`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Run name.
    pub run: String,
    /// Wall time from `init` to `finish`.
    pub wall_seconds: f64,
    /// Span aggregates merged across threads, sorted by path.
    pub spans: Vec<SpanSummary>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// JSONL records written (0 when no sink was configured).
    pub records: u64,
}

impl Summary {
    /// Looks up a span aggregate by its exact path.
    pub fn span(&self, path: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Renders the summary as an aligned table (the end-of-run report
    /// printed to stderr).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "── telemetry: {} ({} wall) ──\n",
            self.run,
            fmt_seconds(self.wall_seconds)
        ));
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<40} {:>9} {:>10} {:>10} {:>10} {:>4}\n",
                "span", "count", "total", "mean", "max", "thr"
            ));
            for s in &self.spans {
                let depth = s.path.matches('/').count();
                let name = s.path.rsplit('/').next().unwrap_or(&s.path);
                let label = format!("{}{}", "  ".repeat(depth), name);
                out.push_str(&format!(
                    "{:<40} {:>9} {:>10} {:>10} {:>10} {:>4}\n",
                    clip(&label, 40),
                    fmt_count(s.count),
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.max_ns),
                    s.threads
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {:<38} {:>20}\n", clip(name, 38), fmt_count(*value)));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {:<38} {:>20.6}\n", clip(name, 38), value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<30} {:>9} {:>11} {:>11} {:>11}\n",
                "histogram", "count", "p50", "p90", "max"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<30} {:>9} {:>11} {:>11} {:>11}\n",
                    clip(name, 30),
                    fmt_count(h.count),
                    fmt_f64(h.p50),
                    fmt_f64(h.p90),
                    fmt_f64(h.max)
                ));
            }
        }
        out.push_str(&format!("records written: {}\n", self.records));
        out
    }
}

pub(crate) fn clip(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let cut: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// `1.23s` / `45.1ms` / `830µs` / `120ns`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_seconds(s: f64) -> String {
    if s >= 60.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.1}s")
    }
}

/// Compact SI counts: `1.23G` / `4.5M` / `6.7k` / `890`.
pub(crate) fn fmt_count(v: u64) -> String {
    let v = v as f64;
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Compact float for histogram cells.
pub(crate) fn fmt_f64(v: f64) -> String {
    let mag = v.abs();
    if mag >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if mag >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if mag >= 1e4 {
        format!("{:.1}k", v / 1e3)
    } else if mag >= 1.0 || mag == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            run: "unit".to_string(),
            wall_seconds: 12.5,
            spans: vec![
                SpanSummary {
                    path: "train_step".into(),
                    threads: 1,
                    count: 40,
                    total_ns: 1_200_000_000,
                    min_ns: 20_000_000,
                    max_ns: 45_000_000,
                },
                SpanSummary {
                    path: "train_step/d_forward".into(),
                    threads: 1,
                    count: 40,
                    total_ns: 400_000_000,
                    min_ns: 8_000_000,
                    max_ns: 15_000_000,
                },
            ],
            counters: [("nn.gemm.flops".to_string(), 1_234_000_000u64)].into(),
            gauges: [("gan.grad_norm.g".to_string(), 0.25f64)].into(),
            histograms: [(
                "nn.gemm.shard_ns".to_string(),
                HistogramSummary {
                    count: 128,
                    sum: 5e6,
                    min: 100.0,
                    max: 90_000.0,
                    p50: 30_000.0,
                    p90: 70_000.0,
                    p99: 89_000.0,
                },
            )]
            .into(),
            records: 17,
        }
    }

    #[test]
    fn span_lookup_and_mean() {
        let s = sample();
        let step = s.span("train_step").unwrap();
        assert_eq!(step.mean_ns(), 30_000_000);
        assert!(s.span("missing").is_none());
        assert_eq!(
            SpanSummary {
                path: "x".into(),
                threads: 0,
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0
            }
            .mean_ns(),
            0
        );
    }

    #[test]
    fn render_contains_all_sections() {
        let table = sample().render();
        assert!(table.contains("telemetry: unit"));
        assert!(table.contains("train_step"));
        assert!(table.contains("  d_forward"), "nested span indented:\n{table}");
        assert!(table.contains("nn.gemm.flops"));
        assert!(table.contains("1.23G"));
        assert!(table.contains("gan.grad_norm.g"));
        assert!(table.contains("nn.gemm.shard_ns"));
        assert!(table.contains("records written: 17"));
    }

    #[test]
    fn render_of_empty_summary_is_minimal() {
        let table = Summary::default().render();
        assert!(table.contains("records written: 0"));
        assert!(!table.contains("counters"));
        assert!(!table.contains("span "));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(120), "120ns");
        assert_eq!(fmt_ns(830_000), "830.0µs");
        assert_eq!(fmt_ns(45_100_000), "45.1ms");
        assert_eq!(fmt_ns(1_230_000_000), "1.23s");
        assert_eq!(fmt_count(890), "890");
        assert_eq!(fmt_count(67_000), "67.0k");
        assert_eq!(fmt_count(4_500_000), "4.5M");
        assert_eq!(fmt_seconds(90.0), "1m30s");
        assert_eq!(fmt_f64(0.25), "0.2500");
        assert_eq!(clip("abc", 2), "a…");
    }
}
