//! Span-tree profiler over a recorded JSONL stream.
//!
//! The stream's aggregate [`Record::Span`] lines carry one entry per
//! (hierarchical path, thread ordinal) — e.g.
//! `gan.train_step/gan.d_update/nn.conv2d.forward` on thread 0. This
//! module reconstructs the span hierarchy from those paths, computes
//! **self time** (a node's total minus its direct children's totals,
//! on the same thread) next to the recorded totals, and renders:
//!
//! * a tree-shaped profile table with a hot-spot ranking, and
//! * Brendan Gregg collapsed-stack lines
//!   (`gan.train_step;gan.d_update 1234567`) for `flamegraph.pl` and
//!   compatible tooling, weighted by self nanoseconds.
//!
//! Span paths only nest within one thread (a worker thread starts its
//! own root), so self time is computed per thread and then merged
//! across threads per path. The invariant the `telemetry_report`
//! binary checks — Σ self over all nodes equals Σ total over the roots
//! — holds exactly because every nanosecond of a parent's total is
//! attributed either to a child or to the parent itself.

use crate::record::Record;
use crate::summary::{clip, fmt_count, fmt_ns};
use std::collections::BTreeMap;
use std::path::Path;

/// One merged node of the span tree (one path, all threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Full hierarchical path (`a/b/c`).
    pub path: String,
    /// Nesting depth (`0` for roots).
    pub depth: usize,
    /// Distinct thread ordinals that recorded this path.
    pub threads: u32,
    /// Completed scopes across all threads.
    pub count: u64,
    /// Total nanoseconds across all scopes and threads.
    pub total_ns: u64,
    /// Nanoseconds not covered by direct children (same thread).
    pub self_ns: u64,
}

impl ProfileNode {
    /// The last path segment.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// A reconstructed span tree with per-node self/total times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Nodes in depth-first tree order (each parent directly precedes
    /// its children; siblings sort by path).
    nodes: Vec<ProfileNode>,
    /// Σ `total_ns` over the depth-0 roots.
    root_total_ns: u64,
}

impl Profile {
    /// Builds the profile from the span records of a parsed stream.
    /// Non-span records are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: a
    /// duplicate (path, thread) span, or a nested path whose parent was
    /// never recorded on the same thread (an out-of-order or corrupted
    /// stream).
    pub fn from_records(records: &[Record]) -> Result<Profile, String> {
        // (thread, path) → (count, total_ns), errors on duplicates.
        let mut per_thread: BTreeMap<(u32, String), (u64, u64)> = BTreeMap::new();
        for record in records {
            if let Record::Span { path, thread, count, total_ns, .. } = record {
                let key = (*thread, path.clone());
                if per_thread.insert(key, (*count, *total_ns)).is_some() {
                    return Err(format!("duplicate span record {path:?} on thread {thread}"));
                }
            }
        }

        // Per-thread direct-children totals; parents must exist on the
        // same thread because a nested path can only form by entering
        // the parent span on that thread first.
        let mut child_sum: BTreeMap<(u32, String), u64> = BTreeMap::new();
        for ((thread, path), (_, total)) in &per_thread {
            if let Some(cut) = path.rfind('/') {
                let parent = (*thread, path[..cut].to_string());
                if !per_thread.contains_key(&parent) {
                    return Err(format!(
                        "span {path:?} on thread {thread} has no parent {:?} record",
                        &path[..cut]
                    ));
                }
                *child_sum.entry(parent).or_insert(0) += total;
            }
        }

        // Merge threads per path: totals and selfs add, thread count
        // tallies distinct ordinals.
        let mut merged: BTreeMap<String, ProfileNode> = BTreeMap::new();
        for ((thread, path), (count, total)) in &per_thread {
            let children = child_sum.get(&(*thread, path.clone())).copied().unwrap_or(0);
            let self_ns = total.saturating_sub(children);
            let node = merged.entry(path.clone()).or_insert_with(|| ProfileNode {
                path: path.clone(),
                depth: path.matches('/').count(),
                threads: 0,
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            node.threads += 1;
            node.count += count;
            node.total_ns += total;
            node.self_ns += self_ns;
        }

        // Depth-first tree order. Lexicographic sorting alone cannot be
        // trusted ('.' sorts before '/', so a sibling `a.b` would split
        // `a` from its children) — walk the explicit child lists.
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for path in merged.keys() {
            match path.rfind('/') {
                Some(cut) => children.entry(&path[..cut]).or_default().push(path),
                None => roots.push(path),
            }
        }
        let mut order: Vec<String> = Vec::with_capacity(merged.len());
        let mut stack: Vec<&str> = roots.iter().rev().copied().collect();
        while let Some(path) = stack.pop() {
            order.push(path.to_string());
            if let Some(kids) = children.get(path) {
                stack.extend(kids.iter().rev());
            }
        }
        let root_total_ns = roots.iter().map(|r| merged[*r].total_ns).sum();
        let nodes = order.into_iter().map(|p| merged.remove(&p).expect("ordered node")).collect();
        Ok(Profile { nodes, root_total_ns })
    }

    /// Reads and parses a JSONL stream, then builds the profile.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, per-line parse errors, and the structural
    /// errors of [`Profile::from_records`].
    pub fn from_stream(path: &Path) -> Result<Profile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read stream {}: {e}", path.display()))?;
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let record = Record::parse_line(line)
                .map_err(|e| format!("{}:{}: bad record: {e}", path.display(), lineno + 1))?;
            records.push(record);
        }
        Profile::from_records(&records)
    }

    /// The nodes in depth-first tree order.
    pub fn nodes(&self) -> &[ProfileNode] {
        &self.nodes
    }

    /// Σ `total_ns` over the depth-0 roots.
    pub fn root_total_ns(&self) -> u64 {
        self.root_total_ns
    }

    /// Σ `self_ns` over every node; equals [`Profile::root_total_ns`]
    /// for any stream whose span totals are internally consistent.
    pub fn self_sum_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_ns).sum()
    }

    /// The `n` nodes with the largest self time, descending (ties break
    /// by path for determinism).
    pub fn hotspots(&self, n: usize) -> Vec<&ProfileNode> {
        let mut ranked: Vec<&ProfileNode> = self.nodes.iter().collect();
        ranked.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
        ranked.truncate(n);
        ranked
    }

    /// Collapsed-stack lines (`a;b;c <self_ns>`), one per node with
    /// non-zero self time, sorted by stack — the input format of
    /// Brendan Gregg's `flamegraph.pl`.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| n.self_ns > 0)
            .map(|n| format!("{} {}", n.path.replace('/', ";"), n.self_ns))
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Renders the tree-shaped profile table plus a top-`top` hot-spot
    /// ranking. Percentages are of the root total.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        if self.nodes.is_empty() {
            out.push_str("span profile: no span records in stream\n");
            return out;
        }
        let root = self.root_total_ns.max(1) as f64;
        out.push_str(&format!(
            "span profile — root total {} ({} nodes), self-time sum {}\n",
            fmt_ns(self.root_total_ns),
            self.nodes.len(),
            fmt_ns(self.self_sum_ns()),
        ));
        out.push_str(&format!(
            "{:<44} {:>9} {:>10} {:>10} {:>6} {:>4}\n",
            "span", "count", "total", "self", "self%", "thr"
        ));
        for n in &self.nodes {
            let label = format!("{}{}", "  ".repeat(n.depth), n.name());
            out.push_str(&format!(
                "{:<44} {:>9} {:>10} {:>10} {:>5.1}% {:>4}\n",
                clip(&label, 44),
                fmt_count(n.count),
                fmt_ns(n.total_ns),
                fmt_ns(n.self_ns),
                100.0 * n.self_ns as f64 / root,
                n.threads
            ));
        }
        out.push_str(&format!("hot spots (top {top} by self time)\n"));
        for (rank, n) in self.hotspots(top).iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<50} {:>10} {:>5.1}%\n",
                rank + 1,
                clip(&n.path, 50),
                fmt_ns(n.self_ns),
                100.0 * n.self_ns as f64 / root,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, thread: u32, count: u64, total_ns: u64) -> Record {
        Record::Span {
            path: path.into(),
            thread,
            count,
            total_ns,
            min_ns: total_ns / count.max(1),
            max_ns: total_ns / count.max(1),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children_per_thread() {
        let profile = Profile::from_records(&[
            span("step", 0, 10, 1_000),
            span("step/fwd", 0, 10, 600),
            span("step/bwd", 0, 10, 300),
            span("step/fwd/gemm", 0, 20, 450),
        ])
        .unwrap();
        let by_path: BTreeMap<&str, &ProfileNode> =
            profile.nodes().iter().map(|n| (n.path.as_str(), n)).collect();
        assert_eq!(by_path["step"].self_ns, 100);
        assert_eq!(by_path["step/fwd"].self_ns, 150);
        assert_eq!(by_path["step/bwd"].self_ns, 300);
        assert_eq!(by_path["step/fwd/gemm"].self_ns, 450);
        assert_eq!(profile.root_total_ns(), 1_000);
        assert_eq!(profile.self_sum_ns(), profile.root_total_ns());
    }

    #[test]
    fn threads_merge_per_path_and_nest_per_thread() {
        // Thread 1's `shard` root must not be treated as a child of
        // thread 0's `step`, and the same path on two threads merges.
        let profile = Profile::from_records(&[
            span("step", 0, 1, 100),
            span("shard", 1, 1, 40),
            span("shard", 2, 1, 60),
        ])
        .unwrap();
        let shard = profile.nodes().iter().find(|n| n.path == "shard").unwrap();
        assert_eq!(shard.threads, 2);
        assert_eq!(shard.total_ns, 100);
        assert_eq!(profile.root_total_ns(), 200);
    }

    #[test]
    fn dfs_order_keeps_children_under_parents() {
        // A sibling that sorts between a parent and its '/' children
        // lexicographically ('.' < '/') must not split the subtree.
        let profile = Profile::from_records(&[
            span("a", 0, 1, 10),
            span("a.z", 0, 1, 5),
            span("a/kid", 0, 1, 4),
        ])
        .unwrap();
        let paths: Vec<&str> = profile.nodes().iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, ["a", "a/kid", "a.z"]);
        assert_eq!(profile.nodes()[1].depth, 1);
    }

    #[test]
    fn orphan_and_duplicate_spans_are_rejected() {
        let err = Profile::from_records(&[span("a/b", 0, 1, 10)]).unwrap_err();
        assert!(err.contains("no parent"), "{err}");
        let err = Profile::from_records(&[span("a", 0, 1, 10), span("a", 0, 2, 20)]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        // Same path on another thread is legal, not a duplicate.
        assert!(Profile::from_records(&[span("a", 0, 1, 10), span("a", 1, 2, 20)]).is_ok());
    }

    #[test]
    fn collapsed_lines_use_semicolons_and_self_weights() {
        let profile = Profile::from_records(&[
            span("step", 0, 1, 100),
            span("step/fwd", 0, 1, 100), // parent has zero self → omitted
        ])
        .unwrap();
        assert_eq!(profile.collapsed(), "step;fwd 100\n");
    }

    #[test]
    fn render_and_hotspots_rank_by_self() {
        let profile = Profile::from_records(&[
            span("step", 0, 4, 1_000_000),
            span("step/fwd", 0, 4, 900_000),
        ])
        .unwrap();
        let hot = profile.hotspots(10);
        assert_eq!(hot[0].path, "step/fwd");
        let table = profile.render(5);
        assert!(table.contains("span profile"), "{table}");
        assert!(table.contains("  fwd"), "indented child:\n{table}");
        assert!(table.contains("hot spots"), "{table}");
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let profile = Profile::from_records(&[]).unwrap();
        assert_eq!(profile.root_total_ns(), 0);
        assert!(profile.collapsed().is_empty());
        assert!(profile.render(3).contains("no span records"));
    }
}
