//! Live training heartbeats.
//!
//! A heartbeat is one mid-run snapshot of the optimizer loop — step,
//! epoch, per-term losses, gradient norms, throughput, replica
//! shard-balance percentiles, and peak RSS — written to the JSONL sink
//! as a [`crate::Record::Heartbeat`] every `--heartbeat-every` steps.
//! Unlike the aggregate records flushed at `finish`, heartbeats make a
//! long run observable while it is still in flight (`tail -f` the
//! stream, or feed it to `telemetry_report --csv` afterwards for a
//! per-step time series).
//!
//! The cadence is a process-wide setting: harness binaries install it
//! from `--heartbeat-every N` (or the `CACHEBOX_HEARTBEAT_EVERY`
//! environment variable); `0` disables heartbeats. The GAN trainer
//! consults [`crate::heartbeat_every`] each step.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the heartbeat cadence in optimizer
/// steps; equivalent to the harness `--heartbeat-every` flag.
pub const HEARTBEAT_ENV_VAR: &str = "CACHEBOX_HEARTBEAT_EVERY";

/// Sentinel meaning "no explicit override installed".
const UNSET: usize = usize::MAX;

/// Process-wide cadence override installed by [`set_heartbeat_every`].
static HEARTBEAT_EVERY: AtomicUsize = AtomicUsize::new(UNSET);

/// Installs the heartbeat cadence: emit one heartbeat every `steps`
/// optimizer steps (`0` disables). Overrides the environment variable.
pub fn set_heartbeat_every(steps: usize) {
    HEARTBEAT_EVERY.store(steps, Ordering::Relaxed);
}

/// The active heartbeat cadence in optimizer steps: the value installed
/// by [`set_heartbeat_every`], else `CACHEBOX_HEARTBEAT_EVERY`, else
/// `0` (disabled). The environment is read once per process.
pub fn heartbeat_every() -> usize {
    let v = HEARTBEAT_EVERY.load(Ordering::Relaxed);
    if v != UNSET {
        return v;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var(HEARTBEAT_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Process-wide heartbeat sequence. One stream can carry heartbeats
/// from several training runs (the perf harness trains many small
/// models); a shared sequence keeps `step` strictly increasing across
/// all of them, which the validator enforces.
static HEARTBEAT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Next value of the process-wide heartbeat step sequence (1, 2, …).
pub fn next_heartbeat_step() -> u64 {
    HEARTBEAT_SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// One heartbeat payload; the collector stamps `t_ms` on write. All
/// fields mirror [`crate::Record::Heartbeat`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Heartbeat {
    /// Process-wide heartbeat sequence number (strictly increasing
    /// across every emitter — see [`next_heartbeat_step`]).
    pub step: u64,
    /// Epoch the step belongs to.
    pub epoch: u64,
    /// Discriminator BCE loss at this step.
    pub d_loss: f64,
    /// Generator adversarial BCE loss.
    pub g_adv: f64,
    /// Generator L1 reconstruction loss (unweighted).
    pub g_l1: f64,
    /// Discriminator global gradient L2 norm.
    pub grad_norm_d: f64,
    /// Generator global gradient L2 norm.
    pub grad_norm_g: f64,
    /// Training throughput over the step (batch samples / wall s).
    pub samples_per_sec: f64,
    /// Median replica-shard wall time since the last heartbeat (ns).
    pub shard_p50_ns: f64,
    /// 90th-percentile replica-shard wall time in the window (ns).
    pub shard_p90_ns: f64,
    /// Peak resident set size so far (kB; `0` when unavailable).
    pub rss_peak_kb: u64,
}

/// Peak resident set size of the current process in kB, read from
/// `/proc/self/status` (`VmHWM`). Returns `0` on platforms without
/// procfs or when the field is missing — heartbeats degrade rather
/// than fail.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest.trim().trim_end_matches("kB").trim().parse::<u64>().unwrap_or(0);
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_override_wins_and_zero_disables() {
        // The env var is absent in the test environment, so the default
        // is 0 (disabled); an installed override then wins.
        set_heartbeat_every(5);
        assert_eq!(heartbeat_every(), 5);
        set_heartbeat_every(0);
        assert_eq!(heartbeat_every(), 0);
    }

    #[test]
    fn heartbeat_steps_strictly_increase() {
        let a = next_heartbeat_step();
        let b = next_heartbeat_step();
        assert!(b > a && a >= 1);
    }

    #[test]
    fn peak_rss_is_sane() {
        let kb = peak_rss_kb();
        // On Linux a running test process has touched at least a few
        // hundred kB; elsewhere the helper reports 0.
        if cfg!(target_os = "linux") {
            assert!(kb > 100, "implausible VmHWM {kb} kB");
        }
    }
}
