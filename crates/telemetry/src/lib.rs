//! Structured tracing, metrics, and run manifests for CacheBox.
//!
//! Every long-running CacheBox binary — training, the RQ experiment
//! sweeps, the perf harness — funnels its observability through this
//! crate:
//!
//! * [`span`] — hierarchical span timers (`train_step/d_forward`) with
//!   thread-aware aggregation. A [`SpanGuard`] records wall time into a
//!   thread-local buffer on scope exit; buffers merge into the global
//!   collector when their thread exits (or at [`finish`]).
//! * [`counter`] / [`gauge`] / [`observe`] — typed counters, last-value
//!   gauges, and log-bucketed [`Histogram`]s (GEMM FLOPs, im2col bytes,
//!   cache hits/misses, samples/sec).
//! * [`event`] — point-in-time JSONL records (per-epoch losses, RQ stage
//!   completions) written straight to the sink.
//! * [`init`] / [`finish`] — a run writes a `telemetry.jsonl` event
//!   stream plus a `*.manifest.json` run manifest (config, seed, git
//!   revision, thread budget, wall time) and renders a human summary
//!   table on completion.
//!
//! # Zero cost when disabled
//!
//! All recording functions first load one relaxed [`AtomicBool`]; until
//! [`init`] installs a collector they return immediately — no locks, no
//! thread-local access, and **no allocation** (asserted by the
//! `no_alloc` integration test). When enabled, the hot path (spans,
//! counters, histograms) still takes no lock: records accumulate in
//! thread-local buffers and only merge into the global collector under a
//! mutex when a thread exits, which for the scoped GEMM/pipeline workers
//! coincides with the end of a parallel region. Point [`event`]s and
//! [`progress`] lines do lock the sink, so they belong on cold paths
//! (per epoch, per stage) only.
//!
//! # Example
//!
//! ```
//! use cachebox_telemetry as telemetry;
//!
//! let dir = std::env::temp_dir().join("cachebox-telemetry-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let jsonl = dir.join("run.jsonl");
//! let guard = telemetry::init(
//!     telemetry::TelemetryConfig::new("doctest")
//!         .with_jsonl(&jsonl)
//!         .with_summary(false)
//!         .with_seed(42),
//! );
//! {
//!     let _step = telemetry::span("train_step");
//!     let _fwd = telemetry::span("d_forward");
//!     telemetry::counter("nn.gemm.flops", 1 << 20);
//! }
//! telemetry::event("epoch", &[("epoch", 0u64.into()), ("d_loss", 0.69f64.into())]);
//! let summary = guard.finish();
//! assert_eq!(summary.counters["nn.gemm.flops"], 1 << 20);
//! assert!(summary.spans.iter().any(|s| s.path == "train_step/d_forward"));
//! assert!(jsonl.with_extension("manifest.json").exists());
//! ```

pub mod collector;
pub mod diff;
pub mod heartbeat;
pub mod histogram;
pub mod manifest;
pub mod profile;
pub mod record;
pub mod summary;
pub mod validate;
pub mod value;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

pub use heartbeat::{
    heartbeat_every, next_heartbeat_step, peak_rss_kb, set_heartbeat_every, Heartbeat,
    HEARTBEAT_ENV_VAR,
};
pub use histogram::Histogram;
pub use manifest::RunManifest;
pub use profile::Profile;
pub use record::Record;
pub use summary::{SpanSummary, Summary};
pub use value::Value;

/// Environment variable naming the JSONL sink path; equivalent to the
/// harness `--telemetry` flag.
pub const TELEMETRY_ENV_VAR: &str = "CACHEBOX_TELEMETRY";

/// Manifest/record schema version, bumped on breaking format changes.
/// Version 2 added the `heartbeat` record type.
pub const SCHEMA_VERSION: u32 = 2;

/// Global on/off gate. Relaxed is enough: recording functions tolerate
/// racing a concurrent `init`/`finish` (worst case a record lands in a
/// buffer that is never flushed).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether a collector is installed. Hot-path callers may use this to
/// skip argument construction; the recording functions all check it
/// themselves.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

pub(crate) fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Configuration for one telemetry run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    pub(crate) run: String,
    pub(crate) jsonl: Option<PathBuf>,
    pub(crate) summary: bool,
    pub(crate) threads: usize,
    pub(crate) seed: Option<u64>,
    pub(crate) config: std::collections::BTreeMap<String, Value>,
}

impl TelemetryConfig {
    /// Starts a configuration for a run named `run` (typically the
    /// binary or experiment name). The summary table is on by default.
    pub fn new(run: &str) -> Self {
        TelemetryConfig { run: run.to_string(), summary: true, threads: 1, ..Default::default() }
    }

    /// Streams events to `path` as JSON Lines and writes the run
    /// manifest next to it (`.jsonl` → `.manifest.json`).
    pub fn with_jsonl(mut self, path: impl AsRef<Path>) -> Self {
        self.jsonl = Some(path.as_ref().to_path_buf());
        self
    }

    /// Enables or disables the human summary table rendered to stderr
    /// when the run finishes.
    pub fn with_summary(mut self, summary: bool) -> Self {
        self.summary = summary;
        self
    }

    /// Records the worker-thread budget in the manifest.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Records the experiment master seed in the manifest.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches a free-form configuration entry to the manifest
    /// (e.g. scale name, image size, epochs).
    pub fn with_kv(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.config.insert(key.to_string(), value.into());
        self
    }
}

/// Handle returned by [`init`]; finishing (or dropping) it flushes the
/// run. Hold it in `main` for the lifetime of the instrumented work.
#[derive(Debug)]
#[must_use = "dropping the guard immediately would end the telemetry run"]
pub struct TelemetryGuard {
    finished: bool,
}

impl TelemetryGuard {
    /// Flushes all buffers, writes the aggregate records and the run
    /// manifest, renders the summary table (if enabled), and returns the
    /// in-process [`Summary`].
    pub fn finish(mut self) -> Summary {
        self.finished = true;
        collector::finish()
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if !self.finished {
            collector::finish();
        }
    }
}

/// Installs the global collector and enables recording.
///
/// # Panics
///
/// Panics if telemetry is already active (one run per process), or if
/// the JSONL sink cannot be created.
pub fn init(config: TelemetryConfig) -> TelemetryGuard {
    collector::install(config);
    TelemetryGuard { finished: false }
}

/// Convenience: [`init`] from the `CACHEBOX_TELEMETRY` environment
/// variable, returning `None` (telemetry stays disabled) when unset.
pub fn init_from_env(run: &str) -> Option<TelemetryGuard> {
    let path = std::env::var_os(TELEMETRY_ENV_VAR)?;
    if path.is_empty() {
        return None;
    }
    Some(init(TelemetryConfig::new(run).with_jsonl(PathBuf::from(path))))
}

/// RAII timer for one span scope. See [`span`].
#[derive(Debug)]
#[must_use = "a span measures the scope holding the guard"]
pub struct SpanGuard {
    pub(crate) active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            collector::exit_span();
        }
    }
}

/// Opens a hierarchical span named `name`; the returned guard records
/// the elapsed wall time under the thread's current span path
/// (`parent/name`) when dropped. Inert (and allocation-free) while
/// telemetry is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    collector::enter_span(name);
    SpanGuard { active: true }
}

/// RAII timer for a named experiment stage. Unlike a plain [`span`] it
/// also emits a `stage` [`event`] with the elapsed seconds on drop, so
/// the JSONL stream shows stage completions live.
#[derive(Debug)]
#[must_use = "a stage measures the scope holding the guard"]
pub struct StageGuard {
    name: &'static str,
    start: Option<std::time::Instant>,
    span: SpanGuard,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        // Close the span first so the stage event carries a timestamp
        // at-or-after the span's own accounting.
        self.span.active = false;
        if let Some(start) = self.start {
            collector::exit_span();
            let seconds = start.elapsed().as_secs_f64();
            event("stage", &[("stage", self.name.into()), ("seconds", seconds.into())]);
        }
    }
}

/// Opens a coarse experiment stage (e.g. `rq2.train`): a [`span`] plus a
/// completion [`event`]. Use on cold paths only.
#[inline]
pub fn stage(name: &'static str) -> StageGuard {
    if !enabled() {
        return StageGuard { name, start: None, span: SpanGuard { active: false } };
    }
    let span = span(name);
    StageGuard { name, start: Some(std::time::Instant::now()), span }
}

/// Adds `delta` to the named monotonic counter.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        collector::add_counter(name, delta);
    }
}

/// Sets the named gauge to `value` (last write wins at merge time).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if enabled() {
        collector::set_gauge(name, value);
    }
}

/// Records one observation into the named histogram.
#[inline]
pub fn observe(name: &str, value: f64) {
    if enabled() {
        collector::observe(name, value);
    }
}

/// Writes a point event straight to the JSONL sink (locks the sink —
/// cold paths only: per epoch, per stage, per sweep).
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if enabled() {
        collector::write_event(name, fields);
    }
}

/// Writes a training [`Heartbeat`] record straight to the JSONL sink
/// (locks the sink — cadence-gated cold path; see
/// [`heartbeat_every`]).
pub fn heartbeat(hb: &Heartbeat) {
    if enabled() {
        collector::write_heartbeat(hb);
    }
}

/// Attaches a runtime-derived entry to the run manifest's config map
/// (e.g. a chunk size tuned from measured telemetry), in addition to
/// anything set up front via [`TelemetryConfig::with_kv`]. Last write
/// wins; a no-op while telemetry is disabled.
pub fn manifest_kv(key: &str, value: impl Into<Value>) {
    if enabled() {
        collector::manifest_kv(key, value.into());
    }
}

/// A snapshot of the named histogram as merged so far: the calling
/// thread's buffer is flushed first, so observations from this thread
/// and from already-exited workers (scoped GEMM shards) are included.
/// Returns `None` while telemetry is disabled or before the first
/// observation reaches the collector.
pub fn histogram_snapshot(name: &str) -> Option<Histogram> {
    if enabled() {
        collector::histogram_snapshot(name)
    } else {
        None
    }
}

/// Progress reporting that keeps stdout machine-parseable: the message
/// goes to **stderr** unconditionally and, when telemetry is enabled, is
/// also recorded as a `progress` event in the JSONL stream.
pub fn progress_str(msg: &str) {
    eprintln!("{msg}");
    if enabled() {
        collector::write_progress(msg);
    }
}

/// [`progress_str`] with `format!` arguments.
#[macro_export]
macro_rules! progress {
    ($($arg:tt)*) => {
        $crate::progress_str(&format!($($arg)*))
    };
}

/// Merges the calling thread's buffered spans/metrics into the global
/// collector. Long-lived threads may call this between phases; worker
/// threads merge automatically on exit, and [`TelemetryGuard::finish`]
/// merges the finishing thread.
pub fn flush_thread() {
    if enabled() {
        collector::flush_current_thread();
    }
}

/// Best-effort git revision of the working tree (read from `.git`
/// without spawning a process), searched upward from the current
/// directory.
pub fn git_revision() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_git_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_git_head(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(reference) = head.strip_prefix("ref: ") {
        if let Ok(rev) = std::fs::read_to_string(git.join(reference)) {
            return Some(rev.trim().to_string());
        }
        // Packed refs fallback.
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some(rev) = line.strip_suffix(reference) {
                return Some(rev.trim().to_string());
            }
        }
        None
    } else {
        Some(head.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_inert() {
        // The global collector is never installed in unit tests, so all
        // of these must be no-ops that do not panic.
        assert!(!enabled());
        let _s = span("unit");
        counter("unit.counter", 1);
        gauge("unit.gauge", 1.0);
        observe("unit.hist", 1.0);
        event("unit.event", &[("k", 1u64.into())]);
        let _st = stage("unit.stage");
        flush_thread();
    }

    #[test]
    fn config_builder_accumulates() {
        let c = TelemetryConfig::new("run")
            .with_seed(7)
            .with_threads(4)
            .with_summary(false)
            .with_kv("scale", "tiny")
            .with_kv("epochs", 2u64);
        assert_eq!(c.run, "run");
        assert_eq!(c.seed, Some(7));
        assert_eq!(c.threads, 4);
        assert!(!c.summary);
        assert_eq!(c.config["scale"], Value::Str("tiny".to_string()));
        assert_eq!(c.config["epochs"], Value::U64(2));
    }

    #[test]
    fn git_revision_resolves_in_repo() {
        // The repo this crate lives in is git-managed; the helper should
        // find a 40-hex revision (tolerate None for exported tarballs).
        if let Some(rev) = git_revision() {
            assert!(rev.len() >= 7, "suspicious revision {rev:?}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
