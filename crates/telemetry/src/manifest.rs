//! The run manifest: one JSON document describing a telemetry run.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Machine-readable description of one instrumented run, written next to
/// the JSONL sink as `<stem>.manifest.json` when the run finishes.
///
/// # Example
///
/// ```
/// use cachebox_telemetry::RunManifest;
/// use std::path::Path;
///
/// let p = RunManifest::manifest_path_for(Path::new("out/telemetry.jsonl"));
/// assert_eq!(p, Path::new("out/telemetry.manifest.json"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest/record schema version ([`crate::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Run name (binary or experiment).
    pub run: String,
    /// `cachebox-telemetry` crate version.
    pub version: String,
    /// Git revision of the working tree, when resolvable.
    pub git_rev: Option<String>,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Wall time from `init` to `finish` in seconds.
    pub wall_seconds: f64,
    /// Worker-thread budget of the run.
    pub threads: usize,
    /// Experiment master seed, when one was set.
    pub seed: Option<u64>,
    /// Free-form run configuration (scale, epochs, image size, …).
    #[serde(default)]
    pub config: BTreeMap<String, Value>,
    /// Number of JSONL records written to the sink.
    pub records: u64,
    /// Path of the JSONL sink this manifest describes.
    pub jsonl: Option<String>,
    /// Final counter values (duplicated from the stream for quick
    /// inspection without parsing the JSONL).
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
}

impl RunManifest {
    /// The manifest path for a given JSONL sink path:
    /// `telemetry.jsonl` → `telemetry.manifest.json`.
    pub fn manifest_path_for(jsonl: &Path) -> PathBuf {
        jsonl.with_extension("manifest.json")
    }

    /// Serializes the manifest as pretty-printed JSON.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (statically impossible for this
    /// schema).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization cannot fail")
    }

    /// Writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message on failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        std::fs::write(path, self.to_json() + "\n").map_err(|e| e.to_string())
    }

    /// Loads a manifest from `path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for I/O or parse failures.
    pub fn load(path: &Path) -> Result<RunManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        serde_json::from_str(&text)
            .map_err(|e| format!("cannot parse manifest {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            schema_version: crate::SCHEMA_VERSION,
            run: "fig08_rq2".to_string(),
            version: "0.1.0".to_string(),
            git_rev: Some("3aeeb0b".to_string()),
            started_unix_ms: 1_700_000_000_000,
            wall_seconds: 42.5,
            threads: 8,
            seed: Some(7),
            config: [("scale".to_string(), Value::Str("tiny".into()))].into(),
            records: 123,
            jsonl: Some("out/telemetry.jsonl".to_string()),
            counters: [("sim.hits".to_string(), 99u64)].into(),
        }
    }

    #[test]
    fn manifest_path_replaces_extension() {
        assert_eq!(
            RunManifest::manifest_path_for(Path::new("a/b/run.jsonl")),
            Path::new("a/b/run.manifest.json")
        );
        assert_eq!(
            RunManifest::manifest_path_for(Path::new("bare")),
            Path::new("bare.manifest.json")
        );
    }

    #[test]
    fn json_roundtrip() {
        let m = sample();
        let back: RunManifest = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("cachebox-telemetry-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(RunManifest::load(&path).unwrap(), m);
        assert!(RunManifest::load(&dir.join("missing.json")).is_err());
    }

    #[test]
    fn missing_optional_fields_default() {
        let text = r#"{
            "schema_version": 1, "run": "r", "version": "0.1.0",
            "git_rev": null, "started_unix_ms": 0, "wall_seconds": 0.0,
            "threads": 1, "seed": null, "records": 0, "jsonl": null
        }"#;
        let m: RunManifest = serde_json::from_str(text).unwrap();
        assert!(m.config.is_empty());
        assert!(m.counters.is_empty());
    }
}
