//! The JSONL record schema (one JSON object per line).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One line of the telemetry event stream.
///
/// The stream starts with a [`Record::Meta`], interleaves point
/// [`Record::Event`]s, [`Record::Progress`] lines, and periodic
/// [`Record::Heartbeat`]s as the run executes, and ends with the
/// aggregate [`Record::Span`],
/// [`Record::Counter`], [`Record::Gauge`], and [`Record::Histogram`]
/// records flushed by `finish`.
///
/// # Example
///
/// ```
/// use cachebox_telemetry::Record;
///
/// let line = r#"{"type":"counter","name":"sim.hits","value":42}"#;
/// let rec = Record::parse_line(line).unwrap();
/// assert_eq!(rec, Record::Counter { name: "sim.hits".into(), value: 42 });
/// assert_eq!(Record::parse_line(&rec.to_jsonl()).unwrap(), rec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Record {
    /// Stream header: run identity and schema version.
    Meta {
        /// Run name (binary or experiment).
        run: String,
        /// Schema version ([`crate::SCHEMA_VERSION`]).
        schema: u32,
        /// `cachebox-telemetry` crate version.
        version: String,
    },
    /// A point-in-time event with free-form scalar fields.
    Event {
        /// Milliseconds since the run started.
        t_ms: u64,
        /// Event name (`epoch`, `stage`, `sim.config`, …).
        name: String,
        /// Scalar payload.
        #[serde(default)]
        fields: BTreeMap<String, Value>,
    },
    /// A human progress line (mirrored to stderr).
    Progress {
        /// Milliseconds since the run started.
        t_ms: u64,
        /// The message.
        msg: String,
    },
    /// A periodic training heartbeat (see [`crate::heartbeat`]): one
    /// snapshot of the optimizer loop every `--heartbeat-every` steps,
    /// so long runs are observable while in flight.
    Heartbeat {
        /// Milliseconds since the run started.
        t_ms: u64,
        /// Global optimizer step (monotonically increasing).
        step: u64,
        /// Epoch the step belongs to.
        epoch: u64,
        /// Discriminator BCE loss at this step.
        d_loss: f64,
        /// Generator adversarial BCE loss.
        g_adv: f64,
        /// Generator L1 reconstruction loss (unweighted).
        g_l1: f64,
        /// Discriminator global gradient L2 norm.
        grad_norm_d: f64,
        /// Generator global gradient L2 norm.
        grad_norm_g: f64,
        /// Training throughput over the step (batch samples / wall s).
        samples_per_sec: f64,
        /// Median replica-shard wall time since the last heartbeat (ns;
        /// `0` when no shard timings were observed in the window).
        shard_p50_ns: f64,
        /// 90th-percentile replica-shard wall time in the window (ns).
        shard_p90_ns: f64,
        /// Peak resident set size of the process so far (kB; `0` when
        /// the platform exposes no measurement).
        rss_peak_kb: u64,
    },
    /// Aggregated timings of one span path on one thread.
    Span {
        /// Hierarchical path (`train_step/d_forward`).
        path: String,
        /// Thread ordinal (0 = first recording thread).
        thread: u32,
        /// Number of completed scopes.
        count: u64,
        /// Total nanoseconds across scopes.
        total_ns: u64,
        /// Fastest scope.
        min_ns: u64,
        /// Slowest scope.
        max_ns: u64,
    },
    /// Final value of a monotonic counter (merged across threads).
    Counter {
        /// Counter name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// Final value of a gauge.
    Gauge {
        /// Gauge name.
        name: String,
        /// Last recorded value.
        value: f64,
    },
    /// Summary of a histogram (merged across threads).
    Histogram {
        /// Histogram name.
        name: String,
        /// Observation count.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Exact minimum.
        min: f64,
        /// Exact maximum.
        max: f64,
        /// Approximate median.
        p50: f64,
        /// Approximate 90th percentile.
        p90: f64,
        /// Approximate 99th percentile.
        p99: f64,
    },
}

impl Record {
    /// Serializes the record as one JSON line (no trailing newline).
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (statically impossible for this
    /// schema).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("record serialization cannot fail")
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns the serde error for malformed or unknown records.
    pub fn parse_line(line: &str) -> Result<Record, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: Record) {
        let line = r.to_jsonl();
        assert!(!line.contains('\n'), "single line: {line}");
        let back = Record::parse_line(&line).unwrap();
        assert_eq!(r, back, "via {line}");
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        roundtrip(Record::Meta { run: "rq2".into(), schema: 1, version: "0.1.0".into() });
        let mut fields = BTreeMap::new();
        fields.insert("epoch".to_string(), Value::U64(3));
        fields.insert("d_loss".to_string(), Value::F64(0.693));
        fields.insert("note".to_string(), Value::Str("λ=150".into()));
        roundtrip(Record::Event { t_ms: 12, name: "epoch".into(), fields });
        roundtrip(Record::Progress { t_ms: 1, msg: "training 2/10".into() });
        roundtrip(Record::Heartbeat {
            t_ms: 250,
            step: 17,
            epoch: 2,
            d_loss: 0.69,
            g_adv: 0.71,
            g_l1: 0.02,
            grad_norm_d: 1.5,
            grad_norm_g: 3.25,
            samples_per_sec: 128.0,
            shard_p50_ns: 40_000.0,
            shard_p90_ns: 55_000.0,
            rss_peak_kb: 123_456,
        });
        roundtrip(Record::Span {
            path: "train_step/d_forward".into(),
            thread: 2,
            count: 40,
            total_ns: 1_000_000,
            min_ns: 10_000,
            max_ns: 60_000,
        });
        roundtrip(Record::Counter { name: "nn.gemm.flops".into(), value: u64::MAX });
        roundtrip(Record::Gauge { name: "gan.grad_norm.g".into(), value: 0.25 });
        roundtrip(Record::Histogram {
            name: "nn.gemm.shard_ns".into(),
            count: 128,
            sum: 5e6,
            min: 100.0,
            max: 90_000.0,
            p50: 30_000.0,
            p90: 70_000.0,
            p99: 89_000.0,
        });
    }

    #[test]
    fn unknown_type_is_rejected() {
        assert!(Record::parse_line(r#"{"type":"mystery"}"#).is_err());
        assert!(Record::parse_line("not json").is_err());
    }

    #[test]
    fn event_fields_default_to_empty() {
        let r = Record::parse_line(r#"{"type":"event","t_ms":0,"name":"x"}"#).unwrap();
        match r {
            Record::Event { fields, .. } => assert!(fields.is_empty()),
            other => panic!("wrong variant {other:?}"),
        }
    }
}
