//! Loosely typed field values for events and manifests.

use serde::{Deserialize, Serialize};

/// A JSON-representable scalar attached to events and manifest entries.
///
/// Untagged: values serialize as plain JSON scalars. On deserialization
/// integers come back as [`Value::U64`]/[`Value::I64`] and everything
/// fractional as [`Value::F64`], matching the variant order below.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned integer (counts, sizes, seeds).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (losses, rates, seconds).
    F64(f64),
    /// A string (names, labels).
    Str(String),
}

impl Value {
    /// The value as an `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice when it is textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_untagged() {
        assert_eq!(serde_json::to_string(&Value::U64(3)).unwrap(), "3");
        assert_eq!(serde_json::to_string(&Value::F64(0.5)).unwrap(), "0.5");
        assert_eq!(serde_json::to_string(&Value::Str("x".into())).unwrap(), "\"x\"");
        assert_eq!(serde_json::to_string(&Value::Bool(true)).unwrap(), "true");
    }

    #[test]
    fn roundtrip_preserves_numeric_kind() {
        for v in [Value::U64(7), Value::I64(-7), Value::F64(1.25), Value::Bool(false)] {
            let s = serde_json::to_string(&v).unwrap();
            let back: Value = serde_json::from_str(&s).unwrap();
            assert_eq!(v, back, "via {s}");
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from(2u64).as_f64(), Some(2.0));
        assert_eq!(Value::from(-2i64).as_f64(), Some(-2.0));
        assert_eq!(Value::from("a").as_str(), Some("a"));
        assert_eq!(Value::from(true).as_f64(), None);
    }
}
