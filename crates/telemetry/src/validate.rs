//! Consistency checks between a JSONL stream and its run manifest,
//! used by the CI smoke job (via the `validate_telemetry` bench binary)
//! and the end-to-end tests.

use crate::manifest::RunManifest;
use crate::record::Record;
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::path::Path;

/// Tally of a validated stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total JSONL records parsed.
    pub records: u64,
    /// Point events.
    pub events: u64,
    /// Progress lines.
    pub progress: u64,
    /// Training heartbeats.
    pub heartbeats: u64,
    /// Span aggregates.
    pub spans: u64,
    /// Counter aggregates.
    pub counters: u64,
    /// Gauge aggregates.
    pub gauges: u64,
    /// Histogram aggregates.
    pub histograms: u64,
}

/// Validates a `telemetry.jsonl` stream against its manifest:
///
/// * every line parses as a known [`Record`];
/// * the stream opens with a [`Record::Meta`] whose run name and schema
///   version match the manifest;
/// * timestamped records (events, progress, heartbeats) carry
///   non-decreasing `t_ms` and none appears after the aggregate tail
///   begins — a writer that interleaves them corrupted the stream;
/// * heartbeat losses/norms/throughput are finite and steps strictly
///   increase;
/// * span aggregates are internally consistent
///   (`count > 0`, `min ≤ max ≤ total`), unique per `(path, thread)`,
///   every nested path has its parent aggregate on the same thread,
///   and direct children never total more time than their parent;
/// * histogram percentiles are monotone within `[min, max]`;
/// * pipeline gauges stay in range — `gan.pipeline.overlap_ratio`
///   within `[0, 1]`, `gan.micro_batch.count` at least 1 — and the
///   manifest pairs `micro_batches` with `micro_batches_source`;
/// * service gauges stay in range — `serve.queue.depth` is a
///   non-negative integer, `serve.workers` at least 1 — and the
///   manifest pairs `serve_epoch` with a well-formed 16-hex-digit
///   `serve_fingerprint` (arena provenance: which weights answered);
/// * counter records reproduce the manifest's counter map exactly;
/// * the line count equals `manifest.records`.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_files(jsonl: &Path, manifest: &Path) -> Result<ValidationReport, String> {
    let manifest = RunManifest::load(manifest)?;
    let text = std::fs::read_to_string(jsonl)
        .map_err(|e| format!("cannot read stream {}: {e}", jsonl.display()))?;

    if manifest.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "manifest schema {} != supported {SCHEMA_VERSION}",
            manifest.schema_version
        ));
    }

    let mut report = ValidationReport::default();
    let mut stream_counters: BTreeMap<String, u64> = BTreeMap::new();
    // (thread, path) -> total_ns, for uniqueness and nesting checks.
    let mut span_totals: BTreeMap<(u32, String), u64> = BTreeMap::new();
    let mut last_t_ms = 0u64;
    let mut last_hb_step: Option<u64> = None;
    let mut in_aggregate_tail = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let record = Record::parse_line(line)
            .map_err(|e| format!("{}:{lineno}: bad record: {e}", jsonl.display()))?;
        report.records += 1;
        if lineno == 1 && !matches!(record, Record::Meta { .. }) {
            return Err("stream does not open with a meta record".to_string());
        }
        if matches!(
            record,
            Record::Event { .. } | Record::Progress { .. } | Record::Heartbeat { .. }
        ) {
            if in_aggregate_tail {
                return Err(format!(
                    "line {lineno}: timestamped record after the aggregate tail \
                     (out-of-order stream)"
                ));
            }
        } else if !matches!(record, Record::Meta { .. }) {
            in_aggregate_tail = true;
        }
        let mut check_t_ms = |t_ms: u64| -> Result<(), String> {
            if t_ms < last_t_ms {
                return Err(format!(
                    "line {lineno}: timestamp goes backwards ({t_ms}ms after {last_t_ms}ms)"
                ));
            }
            last_t_ms = t_ms;
            Ok(())
        };
        match record {
            Record::Meta { run, schema, .. } => {
                if lineno != 1 {
                    return Err(format!("line {lineno}: meta record not at stream head"));
                }
                if run != manifest.run {
                    return Err(format!(
                        "run mismatch: stream {run:?} vs manifest {:?}",
                        manifest.run
                    ));
                }
                if schema != manifest.schema_version {
                    return Err(format!(
                        "schema mismatch: stream {schema} vs manifest {}",
                        manifest.schema_version
                    ));
                }
            }
            Record::Event { t_ms, .. } => {
                report.events += 1;
                check_t_ms(t_ms)?;
            }
            Record::Progress { t_ms, .. } => {
                report.progress += 1;
                check_t_ms(t_ms)?;
            }
            Record::Heartbeat {
                t_ms,
                step,
                d_loss,
                g_adv,
                g_l1,
                grad_norm_d,
                grad_norm_g,
                samples_per_sec,
                shard_p50_ns,
                shard_p90_ns,
                ..
            } => {
                report.heartbeats += 1;
                check_t_ms(t_ms)?;
                let floats = [
                    d_loss,
                    g_adv,
                    g_l1,
                    grad_norm_d,
                    grad_norm_g,
                    samples_per_sec,
                    shard_p50_ns,
                    shard_p90_ns,
                ];
                if floats.iter().any(|v| !v.is_finite()) {
                    return Err(format!(
                        "line {lineno}: heartbeat at step {step} has non-finite fields"
                    ));
                }
                if let Some(prev) = last_hb_step {
                    if step <= prev {
                        return Err(format!(
                            "line {lineno}: heartbeat step {step} after step {prev} \
                             (steps must strictly increase)"
                        ));
                    }
                }
                last_hb_step = Some(step);
            }
            Record::Span { path, thread, count, total_ns, min_ns, max_ns } => {
                report.spans += 1;
                if count == 0 {
                    return Err(format!("line {lineno}: span {path:?} with zero count"));
                }
                if min_ns > max_ns || max_ns > total_ns {
                    return Err(format!(
                        "line {lineno}: span {path:?} inconsistent: min {min_ns} max {max_ns} total {total_ns}"
                    ));
                }
                if span_totals.insert((thread, path.clone()), total_ns).is_some() {
                    return Err(format!(
                        "line {lineno}: duplicate span aggregate for {path:?} on thread {thread}"
                    ));
                }
            }
            Record::Counter { name, value } => {
                report.counters += 1;
                stream_counters.insert(name, value);
            }
            Record::Gauge { value, name } => {
                report.gauges += 1;
                if !value.is_finite() {
                    return Err(format!("line {lineno}: gauge {name:?} is not finite"));
                }
                if name == "gan.pipeline.overlap_ratio" && !(0.0..=1.0).contains(&value) {
                    return Err(format!("line {lineno}: gauge {name:?} = {value} outside [0, 1]"));
                }
                if name == "gan.micro_batch.count" && value < 1.0 {
                    return Err(format!(
                        "line {lineno}: gauge {name:?} = {value}, but every step runs at \
                         least one micro-batch"
                    ));
                }
                if name == "serve.queue.depth" && (value < 0.0 || value.fract() != 0.0) {
                    return Err(format!(
                        "line {lineno}: gauge {name:?} = {value}, but a queue depth is a \
                         non-negative integer"
                    ));
                }
                if name == "serve.workers" && value < 1.0 {
                    return Err(format!(
                        "line {lineno}: gauge {name:?} = {value}, but a service runs at \
                         least one worker"
                    ));
                }
            }
            Record::Histogram { name, count, min, max, p50, p90, p99, .. } => {
                report.histograms += 1;
                if count == 0 {
                    return Err(format!("line {lineno}: histogram {name:?} with zero count"));
                }
                let ordered = min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max;
                if !ordered {
                    return Err(format!(
                        "line {lineno}: histogram {name:?} percentiles not monotone: \
                         min {min} p50 {p50} p90 {p90} p99 {p99} max {max}"
                    ));
                }
            }
        }
    }

    // Structural span checks need the whole set: a nested path must have
    // its parent on the same thread, and direct children cannot account
    // for more time than the scope that contains them.
    let mut child_sums: BTreeMap<(u32, &str), u64> = BTreeMap::new();
    for ((thread, path), total) in &span_totals {
        if let Some((parent, _)) = path.rsplit_once('/') {
            if !span_totals.contains_key(&(*thread, parent.to_string())) {
                return Err(format!(
                    "span {path:?} on thread {thread} has no parent aggregate {parent:?}"
                ));
            }
            *child_sums.entry((*thread, parent)).or_insert(0) += *total;
        }
    }
    for ((thread, parent), sum) in &child_sums {
        let parent_total = span_totals[&(*thread, parent.to_string())];
        if *sum > parent_total {
            return Err(format!(
                "children of span {parent:?} on thread {thread} total {sum}ns, \
                 more than the parent's {parent_total}ns"
            ));
        }
    }

    // Micro-batch provenance travels as a pair: a manifest that
    // records the count must say where it came from, and a source
    // without a count is equally meaningless.
    let has_micro = manifest.config.contains_key("micro_batches");
    let has_source = manifest.config.contains_key("micro_batches_source");
    if has_micro != has_source {
        return Err("manifest pairs micro_batches with micro_batches_source; only one is present"
            .to_string());
    }

    // Arena provenance travels as a pair too: an epoch without the
    // weight fingerprint (or the reverse) cannot say *which* weights
    // answered the run's requests.
    let has_epoch = manifest.config.contains_key("serve_epoch");
    let fingerprint = manifest.config.get("serve_fingerprint");
    if has_epoch != fingerprint.is_some() {
        return Err(
            "manifest pairs serve_epoch with serve_fingerprint; only one is present".to_string()
        );
    }
    if let Some(fp) = fingerprint {
        let ok = matches!(fp, crate::value::Value::Str(s)
            if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
        if !ok {
            return Err(format!(
                "manifest serve_fingerprint {fp:?} is not a 16-digit lowercase hex string"
            ));
        }
    }

    if report.records == 0 {
        return Err(format!("{}: empty stream", jsonl.display()));
    }
    if report.records != manifest.records {
        return Err(format!(
            "record count mismatch: stream has {} lines, manifest says {}",
            report.records, manifest.records
        ));
    }
    if stream_counters != manifest.counters {
        return Err(format!(
            "counter mismatch: stream {stream_counters:?} vs manifest {:?}",
            manifest.counters
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::path::PathBuf;

    fn write_pair(name: &str, lines: &[String], mut manifest: RunManifest) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join("cachebox-telemetry-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join(format!("{name}.jsonl"));
        std::fs::write(&jsonl, lines.join("\n") + "\n").unwrap();
        let mpath = RunManifest::manifest_path_for(&jsonl);
        manifest.records = lines.len() as u64;
        manifest.save(&mpath).unwrap();
        (jsonl, mpath)
    }

    fn manifest() -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            run: "v".to_string(),
            version: "0".to_string(),
            git_rev: None,
            started_unix_ms: 0,
            wall_seconds: 0.0,
            threads: 1,
            seed: None,
            config: BTreeMap::new(),
            records: 0,
            jsonl: None,
            counters: BTreeMap::new(),
        }
    }

    fn meta() -> String {
        Record::Meta { run: "v".into(), schema: SCHEMA_VERSION, version: "0".into() }.to_jsonl()
    }

    fn heartbeat(t_ms: u64, step: u64) -> Record {
        Record::Heartbeat {
            t_ms,
            step,
            epoch: 0,
            d_loss: 0.6,
            g_adv: 0.7,
            g_l1: 0.1,
            grad_norm_d: 1.0,
            grad_norm_g: 2.0,
            samples_per_sec: 15.0,
            shard_p50_ns: 1000.0,
            shard_p90_ns: 2000.0,
            rss_peak_kb: 4096,
        }
    }

    #[test]
    fn valid_stream_passes() {
        let mut m = manifest();
        m.counters.insert("c".into(), 5);
        let lines = vec![
            meta(),
            Record::Event {
                t_ms: 1,
                name: "epoch".into(),
                fields: [("d_loss".to_string(), Value::F64(0.7))].into(),
            }
            .to_jsonl(),
            Record::Progress { t_ms: 2, msg: "half way".into() }.to_jsonl(),
            heartbeat(3, 1).to_jsonl(),
            heartbeat(4, 2).to_jsonl(),
            Record::Span {
                path: "a".into(),
                thread: 0,
                count: 2,
                total_ns: 100,
                min_ns: 10,
                max_ns: 90,
            }
            .to_jsonl(),
            Record::Span {
                path: "a/b".into(),
                thread: 0,
                count: 2,
                total_ns: 30,
                min_ns: 10,
                max_ns: 20,
            }
            .to_jsonl(),
            Record::Counter { name: "c".into(), value: 5 }.to_jsonl(),
            Record::Gauge { name: "g".into(), value: 0.5 }.to_jsonl(),
            Record::Histogram {
                name: "h".into(),
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
                p50: 2.0,
                p90: 3.0,
                p99: 3.0,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("ok", &lines, m);
        let report = validate_files(&jsonl, &mpath).unwrap();
        assert_eq!(
            report,
            ValidationReport {
                records: 10,
                events: 1,
                progress: 1,
                heartbeats: 2,
                spans: 2,
                counters: 1,
                gauges: 1,
                histograms: 1,
            }
        );
    }

    #[test]
    fn record_count_mismatch_fails() {
        let lines = vec![meta()];
        let (jsonl, mpath) = write_pair("count", &lines, manifest());
        let mut bad = RunManifest::load(&mpath).unwrap();
        bad.records = 99;
        bad.save(&mpath).unwrap();
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("record count mismatch"), "{err}");
    }

    #[test]
    fn counter_mismatch_fails() {
        let mut m = manifest();
        m.counters.insert("c".into(), 4);
        let lines = vec![meta(), Record::Counter { name: "c".into(), value: 5 }.to_jsonl()];
        let (jsonl, mpath) = write_pair("counter", &lines, m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("counter mismatch"), "{err}");
    }

    #[test]
    fn inconsistent_span_fails() {
        let lines = vec![
            meta(),
            Record::Span {
                path: "a".into(),
                thread: 0,
                count: 1,
                total_ns: 5,
                min_ns: 10,
                max_ns: 10,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("span", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn duplicate_span_aggregate_fails() {
        let span = Record::Span {
            path: "a".into(),
            thread: 0,
            count: 1,
            total_ns: 10,
            min_ns: 10,
            max_ns: 10,
        };
        let lines = vec![meta(), span.to_jsonl(), span.to_jsonl()];
        let (jsonl, mpath) = write_pair("dupspan", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("duplicate span aggregate"), "{err}");
    }

    #[test]
    fn orphan_nested_span_fails() {
        // `a/b` exists on thread 1, but its parent `a` only on thread 0.
        let lines = vec![
            meta(),
            Record::Span {
                path: "a".into(),
                thread: 0,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            }
            .to_jsonl(),
            Record::Span {
                path: "a/b".into(),
                thread: 1,
                count: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("orphan", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("no parent aggregate"), "{err}");
    }

    #[test]
    fn children_exceeding_parent_fails() {
        let lines = vec![
            meta(),
            Record::Span {
                path: "a".into(),
                thread: 0,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            }
            .to_jsonl(),
            Record::Span {
                path: "a/b".into(),
                thread: 0,
                count: 1,
                total_ns: 8,
                min_ns: 8,
                max_ns: 8,
            }
            .to_jsonl(),
            Record::Span {
                path: "a/c".into(),
                thread: 0,
                count: 1,
                total_ns: 8,
                min_ns: 8,
                max_ns: 8,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("overfull", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("more than the parent"), "{err}");
    }

    #[test]
    fn heartbeat_corruption_fails() {
        // Non-finite loss.
        let mut hb = heartbeat(1, 1);
        if let Record::Heartbeat { ref mut d_loss, .. } = hb {
            *d_loss = f64::NAN;
        }
        let (jsonl, mpath) = write_pair("hbnan", &[meta(), hb.to_jsonl()], manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");

        // Step going backwards.
        let lines = vec![meta(), heartbeat(1, 5).to_jsonl(), heartbeat(2, 5).to_jsonl()];
        let (jsonl, mpath) = write_pair("hbstep", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("strictly increase"), "{err}");
    }

    #[test]
    fn out_of_order_streams_fail() {
        // Timestamped record after the aggregate tail began.
        let lines = vec![
            meta(),
            Record::Counter { name: "c".into(), value: 1 }.to_jsonl(),
            Record::Progress { t_ms: 9, msg: "late".into() }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("tail", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("out-of-order"), "{err}");

        // Timestamps running backwards.
        let lines = vec![
            meta(),
            Record::Progress { t_ms: 10, msg: "a".into() }.to_jsonl(),
            Record::Progress { t_ms: 4, msg: "b".into() }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("backwards", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn non_monotone_histogram_fails() {
        let lines = vec![
            meta(),
            Record::Histogram {
                name: "h".into(),
                count: 1,
                sum: 1.0,
                min: 1.0,
                max: 2.0,
                p50: 3.0,
                p90: 1.5,
                p99: 1.5,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("hist", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn missing_meta_and_bad_lines_fail() {
        let lines = vec![Record::Progress { t_ms: 0, msg: "no meta".into() }.to_jsonl(), meta()];
        let (jsonl, mpath) = write_pair("meta", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("does not open with a meta record"), "{err}");

        let lines = vec![meta(), meta()];
        let (jsonl, mpath) = write_pair("twometa", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("not at stream head"), "{err}");

        let lines = vec![meta(), "{broken".to_string()];
        let (jsonl, mpath) = write_pair("parse", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("bad record"), "{err}");
    }

    #[test]
    fn pipeline_gauges_out_of_range_fail() {
        let lines = vec![
            meta(),
            Record::Gauge { name: "gan.pipeline.overlap_ratio".into(), value: 1.5 }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("overlap", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("outside [0, 1]"), "{err}");

        let lines = vec![
            meta(),
            Record::Gauge { name: "gan.micro_batch.count".into(), value: 0.0 }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("microcount", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("least one micro-batch"), "{err}");

        // In-range values pass.
        let lines = vec![
            meta(),
            Record::Gauge { name: "gan.pipeline.overlap_ratio".into(), value: 0.42 }.to_jsonl(),
            Record::Gauge { name: "gan.micro_batch.count".into(), value: 3.0 }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("pipelineok", &lines, manifest());
        assert!(validate_files(&jsonl, &mpath).is_ok());
    }

    #[test]
    fn unpaired_micro_batch_provenance_fails() {
        let mut m = manifest();
        m.config.insert("micro_batches".into(), Value::U64(3));
        let (jsonl, mpath) = write_pair("microprov", &[meta()], m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("micro_batches_source"), "{err}");

        let mut m = manifest();
        m.config.insert("micro_batches".into(), Value::U64(3));
        m.config.insert("micro_batches_source".into(), Value::Str("default".into()));
        let (jsonl, mpath) = write_pair("microprovok", &[meta()], m);
        assert!(validate_files(&jsonl, &mpath).is_ok());
    }

    #[test]
    fn serve_gauges_out_of_range_fail() {
        let lines =
            vec![meta(), Record::Gauge { name: "serve.queue.depth".into(), value: 2.5 }.to_jsonl()];
        let (jsonl, mpath) = write_pair("queuedepth", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");

        let lines =
            vec![meta(), Record::Gauge { name: "serve.workers".into(), value: 0.0 }.to_jsonl()];
        let (jsonl, mpath) = write_pair("workers", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("least one worker"), "{err}");

        // In-range values pass.
        let lines = vec![
            meta(),
            Record::Gauge { name: "serve.queue.depth".into(), value: 0.0 }.to_jsonl(),
            Record::Gauge { name: "serve.workers".into(), value: 2.0 }.to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("serveok", &lines, manifest());
        assert!(validate_files(&jsonl, &mpath).is_ok());
    }

    #[test]
    fn unpaired_or_malformed_arena_provenance_fails() {
        let mut m = manifest();
        m.config.insert("serve_epoch".into(), Value::U64(1));
        let (jsonl, mpath) = write_pair("arenaprov", &[meta()], m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("serve_fingerprint"), "{err}");

        let mut m = manifest();
        m.config.insert("serve_epoch".into(), Value::U64(1));
        m.config.insert("serve_fingerprint".into(), Value::Str("NOT-HEX".into()));
        let (jsonl, mpath) = write_pair("arenahex", &[meta()], m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("hex string"), "{err}");

        let mut m = manifest();
        m.config.insert("serve_epoch".into(), Value::U64(1));
        m.config.insert("serve_fingerprint".into(), Value::Str("00ff9ce484222325".into()));
        let (jsonl, mpath) = write_pair("arenaok", &[meta()], m);
        assert!(validate_files(&jsonl, &mpath).is_ok());
    }

    #[test]
    fn run_name_mismatch_fails() {
        let mut m = manifest();
        m.run = "other".to_string();
        let lines = vec![meta()];
        let (jsonl, mpath) = write_pair("run", &lines, m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("run mismatch"), "{err}");
    }
}
