//! Consistency checks between a JSONL stream and its run manifest,
//! used by the CI smoke job (via the `validate_telemetry` bench binary)
//! and the end-to-end tests.

use crate::manifest::RunManifest;
use crate::record::Record;
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::path::Path;

/// Tally of a validated stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total JSONL records parsed.
    pub records: u64,
    /// Point events.
    pub events: u64,
    /// Progress lines.
    pub progress: u64,
    /// Span aggregates.
    pub spans: u64,
    /// Counter aggregates.
    pub counters: u64,
    /// Gauge aggregates.
    pub gauges: u64,
    /// Histogram aggregates.
    pub histograms: u64,
}

/// Validates a `telemetry.jsonl` stream against its manifest:
///
/// * every line parses as a known [`Record`];
/// * the stream opens with a [`Record::Meta`] whose run name and schema
///   version match the manifest;
/// * span aggregates are internally consistent
///   (`count > 0`, `min ≤ max ≤ total`);
/// * histogram percentiles are monotone within `[min, max]`;
/// * counter records reproduce the manifest's counter map exactly;
/// * the line count equals `manifest.records`.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_files(jsonl: &Path, manifest: &Path) -> Result<ValidationReport, String> {
    let manifest = RunManifest::load(manifest)?;
    let text = std::fs::read_to_string(jsonl)
        .map_err(|e| format!("cannot read stream {}: {e}", jsonl.display()))?;

    if manifest.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "manifest schema {} != supported {SCHEMA_VERSION}",
            manifest.schema_version
        ));
    }

    let mut report = ValidationReport::default();
    let mut stream_counters: BTreeMap<String, u64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let record = Record::parse_line(line)
            .map_err(|e| format!("{}:{lineno}: bad record: {e}", jsonl.display()))?;
        report.records += 1;
        match record {
            Record::Meta { run, schema, .. } => {
                if lineno != 1 {
                    return Err(format!("line {lineno}: meta record not at stream head"));
                }
                if run != manifest.run {
                    return Err(format!(
                        "run mismatch: stream {run:?} vs manifest {:?}",
                        manifest.run
                    ));
                }
                if schema != manifest.schema_version {
                    return Err(format!(
                        "schema mismatch: stream {schema} vs manifest {}",
                        manifest.schema_version
                    ));
                }
            }
            Record::Event { .. } => report.events += 1,
            Record::Progress { .. } => report.progress += 1,
            Record::Span { path, count, total_ns, min_ns, max_ns, .. } => {
                report.spans += 1;
                if count == 0 {
                    return Err(format!("line {lineno}: span {path:?} with zero count"));
                }
                if min_ns > max_ns || max_ns > total_ns {
                    return Err(format!(
                        "line {lineno}: span {path:?} inconsistent: min {min_ns} max {max_ns} total {total_ns}"
                    ));
                }
            }
            Record::Counter { name, value } => {
                report.counters += 1;
                stream_counters.insert(name, value);
            }
            Record::Gauge { value, name } => {
                report.gauges += 1;
                if !value.is_finite() {
                    return Err(format!("line {lineno}: gauge {name:?} is not finite"));
                }
            }
            Record::Histogram { name, count, min, max, p50, p90, p99, .. } => {
                report.histograms += 1;
                if count == 0 {
                    return Err(format!("line {lineno}: histogram {name:?} with zero count"));
                }
                let ordered = min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max;
                if !ordered {
                    return Err(format!(
                        "line {lineno}: histogram {name:?} percentiles not monotone: \
                         min {min} p50 {p50} p90 {p90} p99 {p99} max {max}"
                    ));
                }
            }
        }
    }

    if report.records == 0 {
        return Err(format!("{}: empty stream", jsonl.display()));
    }
    if report.records != manifest.records {
        return Err(format!(
            "record count mismatch: stream has {} lines, manifest says {}",
            report.records, manifest.records
        ));
    }
    if stream_counters != manifest.counters {
        return Err(format!(
            "counter mismatch: stream {stream_counters:?} vs manifest {:?}",
            manifest.counters
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::path::PathBuf;

    fn write_pair(name: &str, lines: &[String], mut manifest: RunManifest) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join("cachebox-telemetry-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join(format!("{name}.jsonl"));
        std::fs::write(&jsonl, lines.join("\n") + "\n").unwrap();
        let mpath = RunManifest::manifest_path_for(&jsonl);
        manifest.records = lines.len() as u64;
        manifest.save(&mpath).unwrap();
        (jsonl, mpath)
    }

    fn manifest() -> RunManifest {
        RunManifest {
            schema_version: SCHEMA_VERSION,
            run: "v".to_string(),
            version: "0".to_string(),
            git_rev: None,
            started_unix_ms: 0,
            wall_seconds: 0.0,
            threads: 1,
            seed: None,
            config: BTreeMap::new(),
            records: 0,
            jsonl: None,
            counters: BTreeMap::new(),
        }
    }

    fn meta() -> String {
        Record::Meta { run: "v".into(), schema: SCHEMA_VERSION, version: "0".into() }.to_jsonl()
    }

    #[test]
    fn valid_stream_passes() {
        let mut m = manifest();
        m.counters.insert("c".into(), 5);
        let lines = vec![
            meta(),
            Record::Event {
                t_ms: 1,
                name: "epoch".into(),
                fields: [("d_loss".to_string(), Value::F64(0.7))].into(),
            }
            .to_jsonl(),
            Record::Progress { t_ms: 2, msg: "half way".into() }.to_jsonl(),
            Record::Span {
                path: "a/b".into(),
                thread: 0,
                count: 2,
                total_ns: 30,
                min_ns: 10,
                max_ns: 20,
            }
            .to_jsonl(),
            Record::Counter { name: "c".into(), value: 5 }.to_jsonl(),
            Record::Gauge { name: "g".into(), value: 0.5 }.to_jsonl(),
            Record::Histogram {
                name: "h".into(),
                count: 3,
                sum: 6.0,
                min: 1.0,
                max: 3.0,
                p50: 2.0,
                p90: 3.0,
                p99: 3.0,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("ok", &lines, m);
        let report = validate_files(&jsonl, &mpath).unwrap();
        assert_eq!(
            report,
            ValidationReport {
                records: 7,
                events: 1,
                progress: 1,
                spans: 1,
                counters: 1,
                gauges: 1,
                histograms: 1,
            }
        );
    }

    #[test]
    fn record_count_mismatch_fails() {
        let mut m = manifest();
        m.records = 99; // will be overwritten by write_pair; adjust after
        let lines = vec![meta()];
        let (jsonl, mpath) = write_pair("count", &lines, m);
        let mut bad = RunManifest::load(&mpath).unwrap();
        bad.records = 99;
        bad.save(&mpath).unwrap();
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("record count mismatch"), "{err}");
    }

    #[test]
    fn counter_mismatch_fails() {
        let mut m = manifest();
        m.counters.insert("c".into(), 4);
        let lines = vec![meta(), Record::Counter { name: "c".into(), value: 5 }.to_jsonl()];
        let (jsonl, mpath) = write_pair("counter", &lines, m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("counter mismatch"), "{err}");
    }

    #[test]
    fn inconsistent_span_fails() {
        let lines = vec![
            meta(),
            Record::Span {
                path: "a".into(),
                thread: 0,
                count: 1,
                total_ns: 5,
                min_ns: 10,
                max_ns: 10,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("span", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn non_monotone_histogram_fails() {
        let lines = vec![
            meta(),
            Record::Histogram {
                name: "h".into(),
                count: 1,
                sum: 1.0,
                min: 1.0,
                max: 2.0,
                p50: 3.0,
                p90: 1.5,
                p99: 1.5,
            }
            .to_jsonl(),
        ];
        let (jsonl, mpath) = write_pair("hist", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn missing_meta_and_bad_lines_fail() {
        let lines = vec![Record::Progress { t_ms: 0, msg: "no meta".into() }.to_jsonl(), meta()];
        let (jsonl, mpath) = write_pair("meta", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("not at stream head"), "{err}");

        let lines = vec![meta(), "{broken".to_string()];
        let (jsonl, mpath) = write_pair("parse", &lines, manifest());
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("bad record"), "{err}");
    }

    #[test]
    fn run_name_mismatch_fails() {
        let mut m = manifest();
        m.run = "other".to_string();
        let lines = vec![meta()];
        let (jsonl, mpath) = write_pair("run", &lines, m);
        let err = validate_files(&jsonl, &mpath).unwrap_err();
        assert!(err.contains("run mismatch"), "{err}");
    }
}
