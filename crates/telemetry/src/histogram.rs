//! Log-bucketed histograms with approximate percentiles.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two; 8 bounds the relative quantile error at
/// `2^(1/8) − 1 ≈ 9 %`.
const SUBDIV: f64 = 8.0;

/// Total bucket count: 8 sub-buckets × 64 octaves covers `[0, 2^64)`,
/// enough for nanosecond durations and byte counts alike.
pub const BUCKETS: usize = 512;

/// A fixed-footprint histogram over non-negative values.
///
/// Values are binned at `floor(8·log2(1+v))`, giving ≈9 % relative
/// resolution across the full `u64` range with 4 KiB of state and no
/// allocation per observation.
///
/// # Example
///
/// ```
/// use cachebox_telemetry::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000 {
///     h.record(v as f64);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((p50 - 500.0).abs() < 60.0, "p50 ≈ 500, got {p50}");
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    #[serde(with = "serde_buckets")]
    buckets: Box<[u64; BUCKETS]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Box::new([0; BUCKETS]),
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 {
            return 0;
        }
        ((SUBDIV * (value + 1.0).log2()) as usize).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i` (inclusive).
    fn bucket_lower(i: usize) -> f64 {
        (i as f64 / SUBDIV).exp2() - 1.0
    }

    /// Records one observation. Negative and non-finite values clamp
    /// into the first bucket / are ignored respectively.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of recorded observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-th percentile (`q` in `[0, 100]`), linearly
    /// interpolated within the containing bucket and clamped to the
    /// exact observed `[min, max]`. Returns `0.0` when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // The extremes are tracked exactly — don't let bucket
        // interpolation inflate p0/p100 past an observed value.
        if q <= 0.0 {
            return self.min();
        }
        if q >= 100.0 {
            return self.max();
        }
        // Rank in [1, count]: the k-th smallest observation.
        let rank = (q / 100.0 * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if (next as f64) >= rank {
                let lower = Self::bucket_lower(i);
                let upper = Self::bucket_lower(i + 1);
                let within = (rank - cumulative as f64) / n as f64;
                let estimate = lower + (upper - lower) * within;
                return estimate.clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max()
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

mod serde_buckets {
    //! Serialize the fixed bucket array sparsely as `[[index, count]]`.

    use super::BUCKETS;
    use serde::de::Error;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &[u64; BUCKETS], s: S) -> Result<S::Ok, S::Error> {
        let sparse: Vec<(u16, u64)> =
            b.iter().enumerate().filter(|(_, &n)| n > 0).map(|(i, &n)| (i as u16, n)).collect();
        sparse.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Box<[u64; BUCKETS]>, D::Error> {
        let sparse: Vec<(u16, u64)> = Vec::deserialize(d)?;
        let mut b = Box::new([0u64; BUCKETS]);
        for (i, n) in sparse {
            let slot = b.get_mut(i as usize).ok_or_else(|| D::Error::custom("bucket index"))?;
            *slot = n;
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [3.0, 1.0, 4.0, 1.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert!((h.sum() - 14.0).abs() < 1e-12);
        assert!((h.mean() - 2.8).abs() < 1e-12);
    }

    #[test]
    fn percentiles_of_uniform_ramp_are_proportional() {
        let mut h = Histogram::new();
        for v in 1..=1000u32 {
            h.record(v as f64);
        }
        for q in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let expected = q / 100.0 * 1000.0;
            let got = h.percentile(q);
            let tolerance = (expected * 0.10).max(2.0);
            assert!((got - expected).abs() <= tolerance, "p{q}: expected ≈{expected}, got {got}");
        }
    }

    #[test]
    fn extreme_percentiles_clamp_to_observed_range() {
        let mut h = Histogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 10.0);
        assert_eq!(h.percentile(100.0), 30.0);
    }

    #[test]
    fn wide_dynamic_range_keeps_relative_accuracy() {
        let mut h = Histogram::new();
        // Values spanning nine orders of magnitude (ns → s territory).
        let values = [1.0, 1e3, 1e6, 1e9];
        for &v in &values {
            h.record(v);
        }
        // p100 exact, and each quartile boundary lands within 10 % of a
        // recorded value.
        assert_eq!(h.percentile(100.0), 1e9);
        let p25 = h.percentile(25.0);
        assert!((p25 - 1.0).abs() <= 0.1 * 1.0 + 1.0, "p25 {p25}");
        let p75 = h.percentile(75.0);
        assert!((p75 - 1e6).abs() <= 0.1 * 1e6, "p75 {p75}");
    }

    #[test]
    fn non_finite_values_are_ignored_and_negatives_clamp() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(-5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.percentile(50.0), -5.0, "clamped to observed min");
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..100 {
            let x = (v * 37 % 101) as f64;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [10.0, 50.0, 90.0] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut parts = Vec::new();
        for shard in 0..3 {
            let mut h = Histogram::new();
            for v in 0..40 {
                h.record(((shard * 40 + v) * 53 % 997) as f64);
            }
            parts.push(h);
        }
        let [a, b, c] = [&parts[0], &parts[1], &parts[2]];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(&left.buckets[..], &right.buckets[..]);
        for q in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(left.percentile(q), right.percentile(q));
        }
    }

    #[test]
    fn zero_bucket_edge_percentiles_are_exact() {
        // Bucket 0's lower bound is exactly 0: 2^(0/8) − 1.
        assert_eq!(Histogram::bucket_lower(0), 0.0);
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0.0);
        }
        h.record(1000.0);
        // p0 is the tracked exact minimum; interior percentiles may
        // interpolate, but never past the zero bucket's upper edge.
        assert_eq!(h.percentile(0.0), 0.0);
        let p50 = h.percentile(50.0);
        assert!(
            (0.0..Histogram::bucket_lower(1)).contains(&p50),
            "p50 {p50} escaped the zero bucket"
        );
        assert_eq!(h.percentile(100.0), 1000.0);
    }

    #[test]
    fn serde_is_sparse_and_roundtrips_buckets_exactly() {
        let mut h = Histogram::new();
        for v in [1.0, 1.0, 500.0, 1e6] {
            h.record(v);
        }
        let s = serde_json::to_string(&h).unwrap();
        // Three distinct values → three `[index, count]` pairs, not 512
        // slots.
        let nonzero = h.buckets.iter().filter(|&&n| n > 0).count();
        assert_eq!(nonzero, 3);
        assert!(s.contains("[["), "sparse pair encoding expected: {s}");
        assert!(s.len() < 300, "sparse encoding should stay small: {}", s.len());
        let back: Histogram = serde_json::from_str(&s).unwrap();
        assert_eq!(&h.buckets[..], &back.buckets[..]);
        assert_eq!(h.count(), back.count());
        assert_eq!(h.min(), back.min());
        assert_eq!(h.max(), back.max());
    }

    #[test]
    fn serde_roundtrip_preserves_percentiles() {
        let mut h = Histogram::new();
        for v in 1..=500u32 {
            h.record((v * v) as f64);
        }
        let s = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&s).unwrap();
        assert_eq!(h.count(), back.count());
        for q in [5.0, 50.0, 95.0] {
            assert_eq!(h.percentile(q), back.percentile(q));
        }
    }
}
