//! Proves the "zero cost when disabled" contract: with no collector
//! installed, the recording API performs no heap allocation at all.
//!
//! This lives in its own integration-test binary so the counting
//! allocator and the never-enabled telemetry state cannot interfere
//! with other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recording_does_not_allocate() {
    use cachebox_telemetry as telemetry;
    assert!(!telemetry::enabled(), "collector must never be installed in this binary");

    // One untimed warm-up pass so lazy runtime setup (if any) is paid
    // before counting starts.
    let _warm = telemetry::span("warm");
    telemetry::counter("warm", 1);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _step = telemetry::span("train_step");
        let _fwd = telemetry::span("d_forward");
        telemetry::counter("nn.gemm.flops", i);
        telemetry::gauge("gan.grad_norm.g", i as f64);
        telemetry::observe("nn.gemm.shard_ns", i as f64);
        telemetry::event("epoch", &[("epoch", i.into())]);
        let _stage = telemetry::stage("rq2.train");
        telemetry::flush_thread();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled telemetry fast path allocated {} times",
        after - before
    );
}
