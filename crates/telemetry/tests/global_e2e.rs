//! End-to-end lifecycle of the global collector: install, record from
//! the main thread and short-lived workers, finish, then validate the
//! JSONL stream against the run manifest.
//!
//! The collector is process-global (one run per process), so this binary
//! holds exactly one test.

use cachebox_telemetry as telemetry;

#[test]
fn full_run_roundtrip() {
    let dir = std::env::temp_dir().join("cachebox-telemetry-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("e2e.jsonl");

    let guard = telemetry::init(
        telemetry::TelemetryConfig::new("e2e")
            .with_jsonl(&jsonl)
            .with_summary(false)
            .with_threads(4)
            .with_seed(7)
            .with_kv("scale", "tiny")
            .with_kv("epochs", 2u64),
    );
    assert!(telemetry::enabled());

    // Nested spans and metrics on the main thread.
    {
        let _outer = telemetry::span("train_step");
        for _ in 0..3 {
            let _inner = telemetry::span("d_forward");
            telemetry::counter("main.iters", 1);
        }
    }
    telemetry::gauge("grad_norm", 0.5);
    telemetry::observe("batch_ms", 12.0);
    telemetry::event("epoch", &[("epoch", 0u64.into()), ("d_loss", 0.7f64.into())]);
    telemetry::progress!("epoch {} done", 0);

    // Worker threads merge their buffers automatically on exit — the
    // same shape as the scoped GEMM/pipeline workers.
    let handles: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let _s = telemetry::span("worker");
                telemetry::counter("worker.iters", i + 1);
                telemetry::observe("shard_ns", (i + 1) as f64 * 100.0);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let summary = guard.finish();
    assert!(!telemetry::enabled(), "finish disables recording");

    // Aggregation across threads.
    assert_eq!(summary.run, "e2e");
    assert_eq!(summary.counters["main.iters"], 3);
    assert_eq!(summary.counters["worker.iters"], 1 + 2 + 3 + 4);
    let worker = summary.span("worker").expect("worker span");
    assert_eq!(worker.count, 4);
    assert_eq!(worker.threads, 4, "one buffer per worker thread");
    let nested = summary.span("train_step/d_forward").expect("nested path");
    assert_eq!(nested.count, 3);
    assert!(summary.span("train_step").is_some());
    let shard = &summary.histograms["shard_ns"];
    assert_eq!(shard.count, 4);
    assert_eq!(shard.min, 100.0);
    assert_eq!(shard.max, 400.0);
    assert_eq!(summary.gauges["grad_norm"], 0.5);
    assert!(summary.records > 0);

    // Stream and manifest agree, per the shared validator.
    let manifest_path = telemetry::RunManifest::manifest_path_for(&jsonl);
    let report = telemetry::validate::validate_files(&jsonl, &manifest_path)
        .expect("stream validates against manifest");
    assert_eq!(report.records, summary.records);
    assert!(report.events >= 1);
    assert!(report.progress >= 1);
    assert!(report.spans >= 6, "3 main-thread paths + 4 worker entries");

    let manifest = telemetry::RunManifest::load(&manifest_path).unwrap();
    assert_eq!(manifest.run, "e2e");
    assert_eq!(manifest.seed, Some(7));
    assert_eq!(manifest.threads, 4);
    assert_eq!(manifest.config["scale"], telemetry::Value::Str("tiny".into()));
    assert_eq!(manifest.counters["main.iters"], 3);

    // After finish everything is inert again (no panic, no effect).
    telemetry::counter("late", 1);
    let _late = telemetry::span("late");
    telemetry::flush_thread();
}
