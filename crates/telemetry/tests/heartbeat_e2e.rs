//! End-to-end heartbeat lifecycle: emit mid-run heartbeat records into
//! a JSONL sink, finish, then check the stream validates, profiles, and
//! renders through the same code paths `telemetry_report` uses.
//!
//! The collector is process-global (one run per process), so this binary
//! holds exactly one test.

use cachebox_telemetry as telemetry;

fn beat(step: u64, epoch: u64, sps: f64) -> telemetry::Heartbeat {
    telemetry::Heartbeat {
        step,
        epoch,
        d_loss: 0.69,
        g_adv: 0.72,
        g_l1: 0.031,
        grad_norm_d: 1.4,
        grad_norm_g: 3.1,
        samples_per_sec: sps,
        shard_p50_ns: 42_000.0,
        shard_p90_ns: 61_000.0,
        rss_peak_kb: telemetry::peak_rss_kb(),
    }
}

#[test]
fn heartbeats_reach_the_stream_and_validate() {
    let dir = std::env::temp_dir().join("cachebox-heartbeat-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("hb.jsonl");

    telemetry::set_heartbeat_every(2);
    assert_eq!(telemetry::heartbeat_every(), 2);

    let guard = telemetry::init(
        telemetry::TelemetryConfig::new("hb-e2e")
            .with_jsonl(&jsonl)
            .with_summary(false)
            .with_kv("heartbeat_every", telemetry::heartbeat_every() as u64),
    );

    // Mimic a trainer honoring the cadence: 6 optimizer steps, a
    // heartbeat on every second one, spans and shard timings alongside.
    for local_step in 1u64..=6 {
        let _span = telemetry::span("gan.train_step");
        telemetry::observe("gan.replica.shard_ns", 50_000.0 + local_step as f64);
        if local_step % telemetry::heartbeat_every() as u64 == 0 {
            // The stream-facing step comes from the process-wide
            // sequence so several trainers can share one stream.
            let step = telemetry::next_heartbeat_step();
            telemetry::heartbeat(&beat(step, local_step / 3, 120.0 + local_step as f64));
        }
    }

    let summary = guard.finish();
    // meta + 3 heartbeats + span/histogram aggregates at minimum.
    assert!(summary.records >= 6, "records: {}", summary.records);

    // The validator accepts the cadence: heartbeats counted, ordered,
    // finite, strictly increasing in step.
    let manifest = telemetry::RunManifest::manifest_path_for(&jsonl);
    let report = telemetry::validate::validate_files(&jsonl, &manifest).expect("stream validates");
    assert_eq!(report.heartbeats, 3);
    assert!(report.spans >= 1);

    // The same stream drives the profiler end to end.
    let profile = telemetry::Profile::from_stream(&jsonl).expect("profile builds");
    assert_eq!(profile.self_sum_ns(), profile.root_total_ns());
    assert!(profile.render(5).contains("gan.train_step"));
}
