//! Property-based tests for the trace model.

use cachebox_trace::io::{read_trace, write_trace};
use cachebox_trace::{
    Address, MemoryAccess, ReuseDistanceEngine, ReuseHistogram, Trace, INFINITE_DISTANCE,
};
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..1 << 40, prop::bool::ANY), 0..200).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (addr, store))| {
                if store {
                    MemoryAccess::store(i as u64, Address::new(addr))
                } else {
                    MemoryAccess::load(i as u64, Address::new(addr))
                }
            })
            .collect()
    })
}

proptest! {
    /// Text serialization round-trips every trace exactly.
    #[test]
    fn io_roundtrip(trace in arbitrary_trace()) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Block/base/offset decompose every address consistently.
    #[test]
    fn address_decomposition(raw in any::<u64>(), bits in 0u32..20) {
        let a = Address::new(raw);
        prop_assert_eq!(a.block_base(bits).as_u64() + a.block_offset(bits), raw);
        prop_assert_eq!(a.block(bits), a.block_base(bits).as_u64() >> bits);
    }

    /// Cold accesses in the reuse engine equal the number of distinct
    /// blocks; total distances recorded equal the access count.
    #[test]
    fn reuse_cold_count_is_distinct_blocks(blocks in prop::collection::vec(0u64..64, 1..300)) {
        let mut engine = ReuseDistanceEngine::new();
        let mut cold = 0usize;
        for &b in &blocks {
            if engine.access(b) == INFINITE_DISTANCE {
                cold += 1;
            }
        }
        let distinct: std::collections::HashSet<u64> = blocks.iter().copied().collect();
        prop_assert_eq!(cold, distinct.len());
        prop_assert_eq!(engine.accesses(), blocks.len());
    }

    /// Reuse distances never exceed the number of distinct blocks seen.
    #[test]
    fn reuse_distance_bounded(blocks in prop::collection::vec(0u64..32, 1..200)) {
        let mut engine = ReuseDistanceEngine::new();
        for &b in &blocks {
            let d = engine.access(b);
            if d != INFINITE_DISTANCE {
                prop_assert!(d < 32, "distance {d} impossible with 32 blocks");
            }
        }
    }

    /// The histogram's hit fraction at "infinite" capacity equals
    /// 1 − cold/total.
    #[test]
    fn histogram_saturates_at_full_capacity(blocks in prop::collection::vec(0u64..64, 1..300)) {
        let hist = ReuseHistogram::from_blocks(blocks.iter().copied());
        let warm = (hist.total() - hist.cold()) as f64 / hist.total() as f64;
        let at_capacity = hist.hit_fraction_for_capacity(1 << 20);
        prop_assert!((at_capacity - warm).abs() < 1e-9);
    }

    /// Trace statistics are consistent: store count, uniqueness bounds.
    #[test]
    fn stats_are_consistent(trace in arbitrary_trace()) {
        let stats = trace.stats();
        prop_assert_eq!(stats.accesses, trace.len());
        prop_assert!(stats.stores <= stats.accesses);
        prop_assert!(stats.unique_addresses <= stats.accesses.max(1));
        prop_assert!(stats.unique_blocks(6) <= stats.unique_addresses.max(1));
        if !trace.is_empty() {
            prop_assert!(stats.min_address.unwrap() <= stats.max_address.unwrap());
        }
    }

    /// `renumbered` preserves addresses and kinds while packing instrs.
    #[test]
    fn renumbered_preserves_content(trace in arbitrary_trace()) {
        let r = trace.renumbered();
        prop_assert_eq!(r.len(), trace.len());
        for (a, b) in trace.iter().zip(r.iter()) {
            prop_assert_eq!(a.address, b.address);
            prop_assert_eq!(a.kind, b.kind);
        }
    }
}
