//! Exact LRU stack-distance (reuse-distance) computation.
//!
//! The reuse distance of an access is the number of *distinct* blocks
//! referenced since the previous access to the same block. It is the
//! foundation of the Hierarchical Reuse Distance baseline in
//! `cachebox-baselines` and a useful workload characterization tool.
//!
//! The engine uses the classic Bennett–Kruskal algorithm: a Fenwick tree
//! over access timestamps marks the most recent occurrence of each block,
//! so each access is processed in `O(log n)`.

use crate::Address;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Distance reported for a block's first (cold) access.
pub const INFINITE_DISTANCE: u64 = u64::MAX;

/// Append-only Fenwick (binary indexed) tree over timestamps.
///
/// Positions are 1-based internally; `tree[i - 1]` covers the element range
/// `[i - lowbit(i) + 1, i]`. New positions are appended with their covered
/// range sum computed from existing prefix queries, so the invariant holds
/// without preallocating capacity.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn with_capacity(n: usize) -> Self {
        Fenwick { tree: Vec::with_capacity(n) }
    }

    /// Number of elements stored.
    fn len(&self) -> usize {
        self.tree.len()
    }

    /// Appends a new element (at 0-based index `self.len()`) with `value`.
    fn append(&mut self, value: u64) {
        let i = self.tree.len() + 1; // 1-based position of the new element
        let lowbit = i & i.wrapping_neg();
        // Sum of elements in [i - lowbit + 1, i - 1].
        let below = self.prefix_count(i - 1).wrapping_sub(self.prefix_count(i - lowbit));
        self.tree.push(below.wrapping_add(value));
    }

    /// Adds `delta` to the element at 0-based `index`.
    fn add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i <= self.tree.len() {
            self.tree[i - 1] = self.tree[i - 1].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the first `count` elements (0-based indices `[0, count)`).
    fn prefix_count(&self, mut count: usize) -> u64 {
        let mut sum = 0u64;
        while count > 0 {
            sum = sum.wrapping_add(self.tree[count - 1]);
            count -= count & count.wrapping_neg();
        }
        sum
    }
}

/// Streaming exact reuse-distance engine.
///
/// Feed block identifiers (e.g. `address.block(6)`) in access order;
/// [`ReuseDistanceEngine::access`] returns each access's stack distance.
///
/// # Example
///
/// ```
/// use cachebox_trace::{ReuseDistanceEngine, INFINITE_DISTANCE};
///
/// let mut engine = ReuseDistanceEngine::new();
/// assert_eq!(engine.access(10), INFINITE_DISTANCE); // cold
/// assert_eq!(engine.access(20), INFINITE_DISTANCE); // cold
/// assert_eq!(engine.access(10), 1); // one distinct block (20) in between
/// assert_eq!(engine.access(10), 0); // immediate re-reference
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseDistanceEngine {
    last_seen: HashMap<u64, usize>,
    fenwick: Fenwick,
    time: usize,
}

impl ReuseDistanceEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        ReuseDistanceEngine::default()
    }

    /// Creates an engine sized for about `n` accesses.
    pub fn with_capacity(n: usize) -> Self {
        ReuseDistanceEngine {
            last_seen: HashMap::with_capacity(n / 4),
            fenwick: Fenwick::with_capacity(n),
            time: 0,
        }
    }

    /// Processes one access to `block`, returning its reuse distance
    /// ([`INFINITE_DISTANCE`] for a cold access).
    pub fn access(&mut self, block: u64) -> u64 {
        let now = self.time;
        self.time += 1;
        let distance = match self.last_seen.insert(block, now) {
            None => INFINITE_DISTANCE,
            Some(prev) => {
                // Distinct blocks marked in 0-based indices (prev, now).
                let between = self.fenwick.prefix_count(now) - self.fenwick.prefix_count(prev + 1);
                self.fenwick.add(prev, -1);
                between
            }
        };
        debug_assert_eq!(self.fenwick.len(), now);
        self.fenwick.append(1);
        distance
    }

    /// Number of accesses processed so far.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Number of distinct blocks seen so far.
    pub fn distinct_blocks(&self) -> usize {
        self.last_seen.len()
    }
}

/// A log₂-bucketed histogram of reuse distances.
///
/// Bucket `i` counts accesses with distance in `[2^(i-1), 2^i)`; bucket 0
/// counts distance-0 accesses; cold accesses are counted separately.
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, MemoryAccess, Trace, ReuseHistogram};
///
/// let trace: Trace = (0..32u64)
///     .map(|i| MemoryAccess::load(i, Address::new((i % 4) * 64)))
///     .collect();
/// let hist = ReuseHistogram::from_trace(&trace, 6);
/// assert_eq!(hist.cold(), 4);
/// // Cyclic pattern over 4 blocks: every warm access has distance 3, so
/// // a 4-block cache hits on all 28 warm accesses (28/32 = 0.875).
/// assert_eq!(hist.hit_fraction_for_capacity(4), 0.875);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReuseHistogram {
    buckets: Vec<u64>,
    cold: u64,
    total: u64,
}

impl ReuseHistogram {
    /// Builds a histogram from a trace at `2^offset_bits`-byte block
    /// granularity.
    pub fn from_trace(trace: &crate::Trace, offset_bits: u32) -> Self {
        Self::from_blocks(trace.iter().map(|a| a.address.block(offset_bits)))
    }

    /// Builds a histogram from an iterator of block numbers.
    pub fn from_blocks<I: IntoIterator<Item = u64>>(blocks: I) -> Self {
        let mut engine = ReuseDistanceEngine::new();
        let mut hist = ReuseHistogram::default();
        for block in blocks {
            hist.record(engine.access(block));
        }
        hist
    }

    /// Records a single reuse distance.
    pub fn record(&mut self, distance: u64) {
        self.total += 1;
        if distance == INFINITE_DISTANCE {
            self.cold += 1;
            return;
        }
        let bucket = if distance == 0 { 0 } else { 64 - distance.leading_zeros() as usize };
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Number of cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw log₂ buckets.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Fraction of accesses whose reuse distance is `< capacity` blocks,
    /// i.e. the hit rate of a fully associative LRU cache holding
    /// `capacity` blocks (cold misses count against the hit rate).
    pub fn hit_fraction_for_capacity(&self, capacity: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            let lo = if bucket == 0 { 0 } else { 1u64 << (bucket - 1) };
            let hi = if bucket == 0 { 0 } else { (1u64 << bucket) - 1 };
            if hi < capacity {
                hits += count;
            } else if lo < capacity {
                // Bucket straddles the capacity boundary: assume a uniform
                // distribution within the bucket.
                let width = (hi - lo + 1) as f64;
                let covered = (capacity - lo) as f64;
                hits += (count as f64 * covered / width).round() as u64;
            }
        }
        hits as f64 / self.total as f64
    }
}

/// Computes per-access reuse distances for an entire trace.
///
/// Returns one distance per access, in trace order.
pub fn reuse_distances(trace: &crate::Trace, offset_bits: u32) -> Vec<u64> {
    let mut engine = ReuseDistanceEngine::with_capacity(trace.len());
    trace.iter().map(|a| engine.access(a.address.block(offset_bits))).collect()
}

/// Convenience: reuse distances for raw addresses (no block grouping).
pub fn address_reuse_distances<I: IntoIterator<Item = Address>>(addresses: I) -> Vec<u64> {
    let mut engine = ReuseDistanceEngine::new();
    addresses.into_iter().map(|a| engine.access(a.as_u64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryAccess, Trace};

    /// O(n²) reference implementation.
    fn naive_distances(blocks: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(blocks.len());
        for (i, &b) in blocks.iter().enumerate() {
            let mut prev = None;
            for j in (0..i).rev() {
                if blocks[j] == b {
                    prev = Some(j);
                    break;
                }
            }
            match prev {
                None => out.push(INFINITE_DISTANCE),
                Some(j) => {
                    let distinct: std::collections::HashSet<u64> =
                        blocks[j + 1..i].iter().copied().collect();
                    out.push(distinct.len() as u64);
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive_on_simple_patterns() {
        let patterns: Vec<Vec<u64>> = vec![
            vec![],
            vec![1],
            vec![1, 1, 1],
            vec![1, 2, 3, 1, 2, 3],
            vec![1, 2, 1, 3, 1, 4, 1],
            vec![5, 4, 3, 2, 1, 1, 2, 3, 4, 5],
        ];
        for p in patterns {
            let mut engine = ReuseDistanceEngine::new();
            let fast: Vec<u64> = p.iter().map(|&b| engine.access(b)).collect();
            assert_eq!(fast, naive_distances(&p), "pattern {p:?}");
        }
    }

    #[test]
    fn matches_naive_on_random_traces() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let blocks: Vec<u64> = (0..200).map(|_| rng.gen_range(0..32)).collect();
            let mut engine = ReuseDistanceEngine::new();
            let fast: Vec<u64> = blocks.iter().map(|&b| engine.access(b)).collect();
            assert_eq!(fast, naive_distances(&blocks));
        }
    }

    #[test]
    fn histogram_capacity_sweep_is_monotone() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let blocks: Vec<u64> = (0..2000).map(|_| rng.gen_range(0..128)).collect();
        let hist = ReuseHistogram::from_blocks(blocks);
        let mut prev = 0.0;
        for cap in [1, 2, 4, 8, 16, 32, 64, 128, 256] {
            let h = hist.hit_fraction_for_capacity(cap);
            assert!(h >= prev - 1e-9, "hit fraction must be monotone in capacity");
            prev = h;
        }
        assert!(prev > 0.9, "capacity >= working set should hit almost always");
    }

    #[test]
    fn engine_counters() {
        let mut e = ReuseDistanceEngine::new();
        e.access(1);
        e.access(2);
        e.access(1);
        assert_eq!(e.accesses(), 3);
        assert_eq!(e.distinct_blocks(), 2);
    }

    #[test]
    fn trace_level_helper() {
        let trace: Trace = [0u64, 64, 0].iter().map(|&a| MemoryAccess::load(a, a.into())).collect();
        let d = reuse_distances(&trace, 6);
        assert_eq!(d, vec![INFINITE_DISTANCE, INFINITE_DISTANCE, 1]);
    }

    #[test]
    fn address_helper_no_blocking() {
        let d = address_reuse_distances([Address::new(0), Address::new(1), Address::new(0)]);
        // 0 and 1 are distinct addresses without block grouping.
        assert_eq!(d, vec![INFINITE_DISTANCE, INFINITE_DISTANCE, 1]);
    }

    #[test]
    fn empty_histogram() {
        let h = ReuseHistogram::default();
        assert_eq!(h.hit_fraction_for_capacity(100), 0.0);
        assert_eq!(h.total(), 0);
    }
}
