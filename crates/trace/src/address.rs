//! Byte addresses and block/set arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte-granular memory address.
///
/// `Address` is a transparent newtype over `u64` providing the block and
/// modulo arithmetic used throughout CacheBox: cache indexing in
/// `cachebox-sim` and modulo projection onto heatmap rows in
/// `cachebox-heatmap`.
///
/// # Example
///
/// ```
/// use cachebox_trace::Address;
///
/// let a = Address::new(0x1234);
/// // 64-byte blocks => 6 offset bits.
/// assert_eq!(a.block(6), 0x48);
/// assert_eq!(a.block_base(6).as_u64(), 0x1200);
/// assert_eq!(a.modulo(512), 0x34 % 512 + 0x1200 % 512);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the block number for a block of `2^offset_bits` bytes.
    ///
    /// With the paper's fixed 64-byte blocks, `offset_bits` is 6.
    pub const fn block(self, offset_bits: u32) -> u64 {
        self.0 >> offset_bits
    }

    /// Returns the first byte address of the enclosing block.
    pub const fn block_base(self, offset_bits: u32) -> Address {
        Address((self.0 >> offset_bits) << offset_bits)
    }

    /// Returns the byte offset within the enclosing block.
    pub const fn block_offset(self, offset_bits: u32) -> u64 {
        self.0 & ((1 << offset_bits) - 1)
    }

    /// Projects the address onto `[0, modulus)` as used for heatmap rows.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub const fn modulo(self, modulus: u64) -> u64 {
        self.0 % modulus
    }

    /// Returns the address advanced by `bytes` (wrapping on overflow).
    pub const fn offset(self, bytes: i64) -> Address {
        Address(self.0.wrapping_add_signed(bytes))
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> Self {
        a.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_arithmetic_for_64_byte_blocks() {
        let a = Address::new(0x1fff);
        assert_eq!(a.block(6), 0x7f);
        assert_eq!(a.block_base(6), Address::new(0x1fc0));
        assert_eq!(a.block_offset(6), 0x3f);
    }

    #[test]
    fn block_zero_offset_bits_is_identity() {
        let a = Address::new(12345);
        assert_eq!(a.block(0), 12345);
        assert_eq!(a.block_base(0), a);
        assert_eq!(a.block_offset(0), 0);
    }

    #[test]
    fn modulo_projects_into_range() {
        let a = Address::new(1000);
        assert_eq!(a.modulo(512), 1000 % 512);
    }

    #[test]
    fn offset_moves_forward_and_backward() {
        let a = Address::new(0x100);
        assert_eq!(a.offset(64), Address::new(0x140));
        assert_eq!(a.offset(-64), Address::new(0xc0));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Address::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Address::new(255)), "ff");
        assert_eq!(format!("{:X}", Address::new(255)), "FF");
    }

    #[test]
    fn conversions_roundtrip() {
        let a: Address = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
