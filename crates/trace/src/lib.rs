//! Memory access trace model for CacheBox.
//!
//! This crate provides the foundational data model shared by every other
//! CacheBox crate: byte [`Address`]es, individual [`MemoryAccess`] records,
//! the [`Trace`] container with summary statistics, an exact LRU
//! [reuse-distance](reuse) engine, and a plain-text trace
//! [reader/writer](io) compatible with ChampSim-style `instr addr kind`
//! lines.
//!
//! In the CacheBox paper, traces are collected with Pin and replayed through
//! ChampSim; in this reproduction they are produced by the synthetic suites
//! in `cachebox-workloads` and replayed through `cachebox-sim`, but the trace
//! model is identical either way.
//!
//! # Example
//!
//! ```
//! use cachebox_trace::{Address, AccessKind, MemoryAccess, Trace};
//!
//! let mut trace = Trace::new();
//! trace.push(MemoryAccess::new(0, Address::new(0x1000), AccessKind::Load));
//! trace.push(MemoryAccess::new(1, Address::new(0x1040), AccessKind::Store));
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.stats().unique_blocks(6), 2);
//! ```

pub mod access;
pub mod address;
pub mod io;
pub mod merge;
pub mod reuse;
pub mod stats;
pub mod trace;

pub use access::{AccessKind, MemoryAccess};
pub use address::Address;
pub use reuse::{ReuseDistanceEngine, ReuseHistogram, INFINITE_DISTANCE};
pub use stats::TraceStats;
pub use trace::Trace;
