//! Summary statistics over a trace.

use crate::{AccessKind, MemoryAccess};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Summary statistics computed over a trace in one pass.
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, MemoryAccess, Trace};
///
/// let trace: Trace = (0..100u64)
///     .map(|i| MemoryAccess::load(i, Address::new(i * 8)))
///     .collect();
/// let stats = trace.stats();
/// assert_eq!(stats.accesses, 100);
/// assert_eq!(stats.dominant_stride(), Some(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of accesses.
    pub accesses: usize,
    /// Number of store accesses.
    pub stores: usize,
    /// Distinct byte addresses touched.
    pub unique_addresses: usize,
    /// Lowest address touched (None when empty).
    pub min_address: Option<u64>,
    /// Highest address touched (None when empty).
    pub max_address: Option<u64>,
    /// Histogram of successive address deltas (stride -> count).
    pub stride_histogram: BTreeMap<i64, usize>,
    /// Distinct 64-byte blocks touched.
    unique_blocks64: usize,
}

impl TraceStats {
    /// Computes statistics from a slice of accesses.
    pub fn from_accesses(accesses: &[MemoryAccess]) -> Self {
        let mut unique = HashSet::new();
        let mut blocks64 = HashSet::new();
        let mut stride_histogram = BTreeMap::new();
        let mut stores = 0usize;
        let mut min_address = None;
        let mut max_address = None;
        let mut prev: Option<u64> = None;
        for a in accesses {
            let raw = a.address.as_u64();
            unique.insert(raw);
            blocks64.insert(a.address.block(6));
            if a.kind == AccessKind::Store {
                stores += 1;
            }
            min_address = Some(min_address.map_or(raw, |m: u64| m.min(raw)));
            max_address = Some(max_address.map_or(raw, |m: u64| m.max(raw)));
            if let Some(p) = prev {
                let stride = raw as i64 - p as i64;
                *stride_histogram.entry(stride).or_insert(0) += 1;
            }
            prev = Some(raw);
        }
        TraceStats {
            accesses: accesses.len(),
            stores,
            unique_addresses: unique.len(),
            min_address,
            max_address,
            stride_histogram,
            unique_blocks64: blocks64.len(),
        }
    }

    /// Number of distinct blocks of `2^offset_bits` bytes.
    ///
    /// Only 64-byte blocks (`offset_bits == 6`) are precomputed; other
    /// granularities return an estimate derived from the address span.
    pub fn unique_blocks(&self, offset_bits: u32) -> usize {
        if offset_bits == 6 {
            self.unique_blocks64
        } else {
            // Conservative estimate: unique addresses cannot exceed unique
            // blocks at a coarser granularity.
            match (self.min_address, self.max_address) {
                (Some(lo), Some(hi)) => {
                    let span_blocks = ((hi >> offset_bits) - (lo >> offset_bits) + 1) as usize;
                    span_blocks.min(self.unique_addresses)
                }
                _ => 0,
            }
        }
    }

    /// The most frequent successive-address stride, or `None` when the
    /// trace has fewer than two accesses.
    pub fn dominant_stride(&self) -> Option<i64> {
        self.stride_histogram.iter().max_by_key(|(_, &count)| count).map(|(&s, _)| s)
    }

    /// Fraction of successive accesses with the dominant stride.
    pub fn stride_regularity(&self) -> f64 {
        let total: usize = self.stride_histogram.values().sum();
        if total == 0 {
            return 0.0;
        }
        let best = self.stride_histogram.values().copied().max().unwrap_or(0);
        best as f64 / total as f64
    }

    /// Address span in bytes (`max - min`), or 0 when empty.
    pub fn address_span(&self) -> u64 {
        match (self.min_address, self.max_address) {
            (Some(lo), Some(hi)) => hi - lo,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Address, Trace};

    #[test]
    fn empty_trace_stats() {
        let stats = Trace::new().stats();
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.unique_blocks(6), 0);
        assert_eq!(stats.dominant_stride(), None);
        assert_eq!(stats.address_span(), 0);
        assert_eq!(stats.stride_regularity(), 0.0);
    }

    #[test]
    fn streaming_trace_has_regular_stride() {
        let trace: Trace =
            (0..64u64).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect();
        let stats = trace.stats();
        assert_eq!(stats.dominant_stride(), Some(64));
        assert!((stats.stride_regularity() - 1.0).abs() < 1e-12);
        assert_eq!(stats.unique_blocks(6), 64);
        assert_eq!(stats.address_span(), 63 * 64);
    }

    #[test]
    fn repeated_address_counts_once() {
        let trace: Trace = (0..10u64).map(|i| MemoryAccess::load(i, Address::new(4096))).collect();
        let stats = trace.stats();
        assert_eq!(stats.unique_addresses, 1);
        assert_eq!(stats.unique_blocks(6), 1);
        assert_eq!(stats.dominant_stride(), Some(0));
    }

    #[test]
    fn coarse_block_estimate_is_bounded() {
        let trace: Trace =
            (0..16u64).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect();
        let stats = trace.stats();
        // 16 accesses spanning 1024 bytes => at most 1 block of 4096 bytes.
        assert_eq!(stats.unique_blocks(12), 1);
    }

    #[test]
    fn store_count() {
        let trace: Trace =
            vec![MemoryAccess::load(0, Address::new(0)), MemoryAccess::store(1, Address::new(8))]
                .into();
        assert_eq!(trace.stats().stores, 1);
    }
}
