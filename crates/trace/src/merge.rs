//! Multi-program trace composition (the paper's "investigating multicore
//! architectures" future-work direction).
//!
//! A shared cache in a multicore sees an interleaving of several
//! programs' access streams over disjoint address spaces. [`interleave`]
//! builds that combined stream from single-program traces.

use crate::{Address, MemoryAccess, Trace};

/// Interleaves traces round-robin, `granule` accesses at a time,
/// offsetting each trace into its own address-space slab so programs
/// never share blocks (distinct processes). Instruction numbers are
/// renumbered to a shared timeline. The result ends when every input is
/// exhausted.
///
/// # Panics
///
/// Panics if `traces` is empty or `granule` is zero.
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, MemoryAccess, Trace, merge::interleave};
///
/// let a: Trace = (0..4u64).map(|i| MemoryAccess::load(i, Address::new(0))).collect();
/// let b: Trace = (0..2u64).map(|i| MemoryAccess::load(i, Address::new(0))).collect();
/// let merged = interleave(&[a, b], 1);
/// assert_eq!(merged.len(), 6);
/// // Streams alternate until the shorter one runs out.
/// assert_ne!(merged[0].address, merged[1].address);
/// ```
pub fn interleave(traces: &[Trace], granule: usize) -> Trace {
    assert!(!traces.is_empty(), "need at least one trace");
    assert!(granule > 0, "granule must be non-zero");
    // Each program gets a 1 TiB slab, far beyond any generator footprint.
    const SLAB: u64 = 1 << 40;
    let total: usize = traces.iter().map(Trace::len).sum();
    let mut cursors = vec![0usize; traces.len()];
    let mut out = Trace::with_capacity(total);
    let mut instr = 0u64;
    while out.len() < total {
        for (which, trace) in traces.iter().enumerate() {
            let start = cursors[which];
            let end = (start + granule).min(trace.len());
            for i in start..end {
                let a = trace[i];
                out.push(MemoryAccess::new(
                    instr,
                    Address::new(a.address.as_u64() % SLAB + which as u64 * SLAB),
                    a.kind,
                ));
                instr += 1;
            }
            cursors[which] = end;
        }
    }
    out
}

/// Splits an interleaved trace back into its per-program streams by
/// address slab (the inverse of [`interleave`]'s address mapping).
pub fn split_by_program(merged: &Trace, programs: usize) -> Vec<Trace> {
    const SLAB: u64 = 1 << 40;
    let mut out = vec![Trace::new(); programs];
    for a in merged {
        let which = (a.address.as_u64() / SLAB) as usize;
        if which < programs {
            out[which].push(MemoryAccess::new(
                a.instr,
                Address::new(a.address.as_u64() % SLAB),
                a.kind,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(len: u64, base: u64) -> Trace {
        (0..len).map(|i| MemoryAccess::load(i, Address::new(base + i * 64))).collect()
    }

    #[test]
    fn preserves_every_access() {
        let merged = interleave(&[trace(10, 0), trace(7, 0), trace(3, 0)], 2);
        assert_eq!(merged.len(), 20);
    }

    #[test]
    fn programs_get_disjoint_address_spaces() {
        let merged = interleave(&[trace(8, 0), trace(8, 0)], 1);
        let spaces: std::collections::HashSet<u64> =
            merged.iter().map(|a| a.address.as_u64() >> 40).collect();
        assert_eq!(spaces.len(), 2);
    }

    #[test]
    fn round_robin_order_at_granule() {
        let merged = interleave(&[trace(4, 0), trace(4, 0)], 2);
        let programs: Vec<u64> = merged.iter().map(|a| a.address.as_u64() >> 40).collect();
        assert_eq!(programs, vec![0, 0, 1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn instructions_are_consecutive() {
        let merged = interleave(&[trace(5, 0), trace(5, 0)], 3);
        for (i, a) in merged.iter().enumerate() {
            assert_eq!(a.instr, i as u64);
        }
    }

    #[test]
    fn split_recovers_programs() {
        let a = trace(6, 128);
        let b = trace(4, 4096);
        let merged = interleave(&[a.clone(), b.clone()], 2);
        let parts = split_by_program(&merged, 2);
        let addrs = |t: &Trace| -> Vec<u64> { t.iter().map(|x| x.address.as_u64()).collect() };
        assert_eq!(addrs(&parts[0]), addrs(&a));
        assert_eq!(addrs(&parts[1]), addrs(&b));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty_input() {
        interleave(&[], 1);
    }
}
