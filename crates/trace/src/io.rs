//! Plain-text trace reading and writing.
//!
//! The format is one access per line: `instr hex-address kind`, e.g.
//! `42 0x7fff0040 R`. Blank lines and lines starting with `#` are ignored
//! when reading.

use crate::{AccessKind, Address, MemoryAccess, Trace};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error returned when parsing a text trace fails.
#[derive(Debug)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError { line, message: message.into() }
    }

    /// 1-based line number at which parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseTraceError {}

/// Errors from [`read_trace`].
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed trace line.
    Parse(ParseTraceError),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace read failed: {e}"),
            ReadTraceError::Parse(e) => e.fmt(f),
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl From<ParseTraceError> for ReadTraceError {
    fn from(e: ParseTraceError) -> Self {
        ReadTraceError::Parse(e)
    }
}

/// Writes a trace in the text format.
///
/// A `&mut` writer may be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cachebox_trace::{Address, MemoryAccess, Trace, io::write_trace};
///
/// let trace: Trace = vec![MemoryAccess::load(0, Address::new(0x40))].into();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace)?;
/// assert_eq!(String::from_utf8(buf)?, "0 0x40 R\n");
/// # Ok(())
/// # }
/// ```
pub fn write_trace<W: Write>(mut writer: W, trace: &Trace) -> std::io::Result<()> {
    for a in trace {
        writeln!(writer, "{} {:#x} {}", a.instr, a.address, a.kind.code())?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// A `&mut` reader may be passed since `BufRead` is implemented for mutable
/// references.
///
/// # Errors
///
/// Returns [`ReadTraceError::Io`] for I/O failures and
/// [`ReadTraceError::Parse`] for malformed lines.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cachebox_trace::io::read_trace;
///
/// let text = "# comment\n0 0x40 R\n1 0x80 W\n";
/// let trace = read_trace(text.as_bytes())?;
/// assert_eq!(trace.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, ReadTraceError> {
    let mut trace = Trace::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        trace.push(parse_line(trimmed, lineno)?);
    }
    Ok(trace)
}

fn parse_line(line: &str, lineno: usize) -> Result<MemoryAccess, ParseTraceError> {
    let mut parts = line.split_whitespace();
    let instr = parts
        .next()
        .ok_or_else(|| ParseTraceError::new(lineno, "missing instruction field"))?
        .parse::<u64>()
        .map_err(|e| ParseTraceError::new(lineno, format!("bad instruction count: {e}")))?;
    let addr_str =
        parts.next().ok_or_else(|| ParseTraceError::new(lineno, "missing address field"))?;
    let addr_digits = addr_str.strip_prefix("0x").or_else(|| addr_str.strip_prefix("0X"));
    let address = match addr_digits {
        Some(hex) => u64::from_str_radix(hex, 16)
            .map_err(|e| ParseTraceError::new(lineno, format!("bad hex address: {e}")))?,
        None => addr_str
            .parse::<u64>()
            .map_err(|e| ParseTraceError::new(lineno, format!("bad address: {e}")))?,
    };
    let kind_str =
        parts.next().ok_or_else(|| ParseTraceError::new(lineno, "missing kind field"))?;
    let kind_char =
        kind_str.chars().next().ok_or_else(|| ParseTraceError::new(lineno, "empty kind field"))?;
    let kind = AccessKind::from_code(kind_char)
        .ok_or_else(|| ParseTraceError::new(lineno, format!("unknown access kind {kind_str:?}")))?;
    if parts.next().is_some() {
        return Err(ParseTraceError::new(lineno, "trailing fields after access kind"));
    }
    Ok(MemoryAccess::new(instr, Address::new(address), kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let trace: Trace = vec![
            MemoryAccess::load(0, Address::new(0x1000)),
            MemoryAccess::store(1, Address::new(0x1040)),
            MemoryAccess::load(5, Address::new(0x2000)),
        ]
        .into();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn decimal_addresses_accepted() {
        let trace = read_trace("0 4096 R\n".as_bytes()).unwrap();
        assert_eq!(trace[0].address, Address::new(4096));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let trace = read_trace("# header\n\n0 0x10 R\n  \n".as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_trace("0 0x10 R\nnonsense\n".as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse(p) => assert_eq!(p.line(), 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_bad_kind() {
        assert!(read_trace("0 0x10 Z\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_trailing_fields() {
        assert!(read_trace("0 0x10 R extra\n".as_bytes()).is_err());
    }

    #[test]
    fn error_display_mentions_line() {
        let err = read_trace("bad\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
