//! The [`Trace`] container.

use crate::{AccessKind, Address, MemoryAccess, TraceStats};
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// An ordered sequence of memory accesses produced by one benchmark run.
///
/// A `Trace` is the unit of data flowing through CacheBox: workload
/// generators produce traces, the cache simulator consumes a trace and
/// yields a per-access hit/miss trace, and the heatmap builder renders
/// traces into images.
///
/// Instruction numbers must be non-decreasing; [`Trace::push`] enforces
/// this in debug builds.
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, MemoryAccess, Trace};
///
/// let trace: Trace = (0..16u64)
///     .map(|i| MemoryAccess::load(i, Address::new(i * 64)))
///     .collect();
/// assert_eq!(trace.len(), 16);
/// assert_eq!(trace.instruction_count(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    accesses: Vec<MemoryAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { accesses: Vec::with_capacity(capacity) }
    }

    /// Appends an access.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `access.instr` is smaller than the last
    /// pushed instruction number.
    pub fn push(&mut self, access: MemoryAccess) {
        debug_assert!(
            self.accesses.last().is_none_or(|last| last.instr <= access.instr),
            "instruction numbers must be non-decreasing"
        );
        self.accesses.push(access);
    }

    /// Number of accesses in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns `true` when the trace contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses as a slice.
    pub fn accesses(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.accesses.iter()
    }

    /// Number of distinct instruction slots spanned by the trace
    /// (`last.instr - first.instr + 1`), or 0 for an empty trace.
    pub fn instruction_count(&self) -> u64 {
        match (self.accesses.first(), self.accesses.last()) {
            (Some(first), Some(last)) => last.instr - first.instr + 1,
            _ => 0,
        }
    }

    /// Computes summary statistics over the whole trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_accesses(&self.accesses)
    }

    /// Returns a sub-trace containing accesses `range` (by index).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Trace {
        Trace { accesses: self.accesses[range].to_vec() }
    }

    /// Renumbers instructions so each access gets a consecutive
    /// instruction number starting at 0.
    ///
    /// Useful after filtering a trace (e.g. keeping only misses) when the
    /// downstream consumer expects densely packed instruction slots.
    pub fn renumbered(&self) -> Trace {
        let accesses = self
            .accesses
            .iter()
            .enumerate()
            .map(|(i, a)| MemoryAccess::new(i as u64, a.address, a.kind))
            .collect();
        Trace { accesses }
    }

    /// Consumes the trace, returning the underlying access vector.
    pub fn into_inner(self) -> Vec<MemoryAccess> {
        self.accesses
    }

    /// Fraction of accesses that are stores, or 0.0 for an empty trace.
    pub fn store_fraction(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let stores = self.accesses.iter().filter(|a| a.kind == AccessKind::Store).count();
        stores as f64 / self.accesses.len() as f64
    }

    /// Returns the set of distinct block numbers touched, for a block of
    /// `2^offset_bits` bytes.
    pub fn footprint_blocks(&self, offset_bits: u32) -> std::collections::HashSet<u64> {
        self.accesses.iter().map(|a| a.address.block(offset_bits)).collect()
    }
}

impl Index<usize> for Trace {
    type Output = MemoryAccess;

    fn index(&self, idx: usize) -> &MemoryAccess {
        &self.accesses[idx]
    }
}

impl FromIterator<MemoryAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        Trace { accesses: iter.into_iter().collect() }
    }
}

impl Extend<MemoryAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl From<Vec<MemoryAccess>> for Trace {
    fn from(accesses: Vec<MemoryAccess>) -> Self {
        Trace { accesses }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

/// Helper for building traces where each access is one instruction.
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, trace::TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// b.load(Address::new(0));
/// b.store(Address::new(64));
/// let trace = b.finish();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace[1].instr, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    trace: Trace,
    next_instr: u64,
}

impl TraceBuilder {
    /// Creates an empty builder starting at instruction 0.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Appends a load at the next instruction slot.
    pub fn load(&mut self, address: Address) -> &mut Self {
        self.access(address, AccessKind::Load)
    }

    /// Appends a store at the next instruction slot.
    pub fn store(&mut self, address: Address) -> &mut Self {
        self.access(address, AccessKind::Store)
    }

    /// Appends an access of the given kind at the next instruction slot.
    pub fn access(&mut self, address: Address, kind: AccessKind) -> &mut Self {
        let instr = self.next_instr;
        self.next_instr += 1;
        self.trace.push(MemoryAccess::new(instr, address, kind));
        self
    }

    /// Advances the instruction counter without emitting a memory access,
    /// modelling non-memory instructions.
    pub fn skip_instructions(&mut self, count: u64) -> &mut Self {
        self.next_instr += count;
        self
    }

    /// Number of accesses recorded so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` when no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finishes the builder, returning the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        (0..8u64).map(|i| MemoryAccess::load(i, Address::new(i % 4 * 64))).collect()
    }

    #[test]
    fn len_and_instruction_count() {
        let t = sample();
        assert_eq!(t.len(), 8);
        assert_eq!(t.instruction_count(), 8);
        assert!(!t.is_empty());
        assert_eq!(Trace::new().instruction_count(), 0);
    }

    #[test]
    fn slice_returns_subrange() {
        let t = sample();
        let s = t.slice(2..5);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].instr, 2);
    }

    #[test]
    fn renumbered_packs_instructions() {
        let t: Trace =
            [3u64, 9, 27].iter().map(|&i| MemoryAccess::load(i, Address::new(i))).collect();
        let r = t.renumbered();
        let instrs: Vec<u64> = r.iter().map(|a| a.instr).collect();
        assert_eq!(instrs, vec![0, 1, 2]);
    }

    #[test]
    fn store_fraction() {
        let mut b = TraceBuilder::new();
        b.load(Address::new(0)).store(Address::new(1)).store(Address::new(2));
        let t = b.finish();
        assert!((t.store_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Trace::new().store_fraction(), 0.0);
    }

    #[test]
    fn footprint_counts_distinct_blocks() {
        let t = sample();
        assert_eq!(t.footprint_blocks(6).len(), 4);
        assert_eq!(t.footprint_blocks(8).len(), 1);
    }

    #[test]
    fn builder_skip_instructions() {
        let mut b = TraceBuilder::new();
        b.load(Address::new(0)).skip_instructions(10).load(Address::new(64));
        let t = b.finish();
        assert_eq!(t[1].instr, 11);
        assert_eq!(t.instruction_count(), 12);
    }

    #[test]
    fn iterators_and_conversions() {
        let t = sample();
        let v: Vec<MemoryAccess> = t.clone().into_iter().collect();
        let t2: Trace = v.into();
        assert_eq!(t, t2);
        assert_eq!(t.iter().count(), 8);
        let borrowed: Vec<_> = (&t).into_iter().collect();
        assert_eq!(borrowed.len(), 8);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    #[cfg(debug_assertions)]
    fn push_rejects_decreasing_instr() {
        let mut t = Trace::new();
        t.push(MemoryAccess::load(5, Address::new(0)));
        t.push(MemoryAccess::load(4, Address::new(0)));
    }
}
