//! Individual memory access records.

use crate::Address;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A demand read (load).
    Load,
    /// A demand write (store).
    Store,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Store`].
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// One-letter code used by the text trace format (`R`/`W`).
    pub const fn code(self) -> char {
        match self {
            AccessKind::Load => 'R',
            AccessKind::Store => 'W',
        }
    }

    /// Parses the one-letter code used by the text trace format.
    pub const fn from_code(c: char) -> Option<AccessKind> {
        match c {
            'R' | 'r' => Some(AccessKind::Load),
            'W' | 'w' => Some(AccessKind::Store),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// One memory access: an instruction sequence number, a byte address, and
/// a load/store kind.
///
/// The instruction sequence number (`instr`) positions the access on the
/// heatmap x-axis; the address is projected onto the y-axis. Multiple
/// accesses may share an `instr` value (one instruction can touch several
/// operands).
///
/// # Example
///
/// ```
/// use cachebox_trace::{Address, AccessKind, MemoryAccess};
///
/// let acc = MemoryAccess::new(7, Address::new(0x40), AccessKind::Load);
/// assert_eq!(acc.instr, 7);
/// assert!(!acc.kind.is_store());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Instruction sequence number (monotonically non-decreasing in a trace).
    pub instr: u64,
    /// Byte address touched by the access.
    pub address: Address,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates a new access record.
    pub const fn new(instr: u64, address: Address, kind: AccessKind) -> Self {
        MemoryAccess { instr, address, kind }
    }

    /// Convenience constructor for a load.
    pub const fn load(instr: u64, address: Address) -> Self {
        Self::new(instr, address, AccessKind::Load)
    }

    /// Convenience constructor for a store.
    pub const fn store(instr: u64, address: Address) -> Self {
        Self::new(instr, address, AccessKind::Store)
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#x} {}", self.instr, self.address, self.kind.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [AccessKind::Load, AccessKind::Store] {
            assert_eq!(AccessKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(AccessKind::from_code('x'), None);
        assert_eq!(AccessKind::from_code('r'), Some(AccessKind::Load));
        assert_eq!(AccessKind::from_code('w'), Some(AccessKind::Store));
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(MemoryAccess::load(0, Address::new(1)).kind, AccessKind::Load);
        assert_eq!(MemoryAccess::store(0, Address::new(1)).kind, AccessKind::Store);
    }

    #[test]
    fn display_format() {
        let acc = MemoryAccess::store(3, Address::new(0x80));
        assert_eq!(acc.to_string(), "3 0x80 W");
    }
}
