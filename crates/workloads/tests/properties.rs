//! Property-based tests for the synthetic benchmark suites.

use cachebox_workloads::{Suite, SuiteId};
use proptest::prelude::*;
use std::collections::HashSet;

fn any_suite() -> impl Strategy<Value = SuiteId> {
    prop_oneof![Just(SuiteId::Spec), Just(SuiteId::Ligra), Just(SuiteId::Polybench)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Suites are deterministic in (id, count, seed) and sized exactly.
    #[test]
    fn suites_deterministic_and_sized(
        suite_id in any_suite(),
        count in 1usize..20,
        seed in 0u64..100,
    ) {
        let a = Suite::build(suite_id, count, seed);
        let b = Suite::build(suite_id, count, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.benchmarks().len(), count);
    }

    /// Traces reach the requested length and regenerate identically.
    #[test]
    fn traces_deterministic_and_long_enough(
        suite_id in any_suite(),
        index in 0usize..6,
        target in 500usize..3000,
    ) {
        let suite = Suite::build(suite_id, 6, 7);
        let bench = &suite.benchmarks()[index];
        let t1 = bench.generate(target);
        prop_assert!(t1.len() >= target, "{}: {}", bench.id(), t1.len());
        prop_assert_eq!(t1, bench.generate(target));
    }

    /// The 80/20 split always covers every benchmark exactly once and
    /// never divides an application, for any size and seed.
    #[test]
    fn split_partitions_and_respects_apps(
        suite_id in any_suite(),
        count in 2usize..40,
        seed in 0u64..50,
    ) {
        let suite = Suite::build(suite_id, count, 3);
        let split = suite.split_80_20(seed);
        prop_assert_eq!(split.train.len() + split.test.len(), count);
        let train_apps: HashSet<&str> =
            split.train.iter().map(|b| b.id().app.as_str()).collect();
        let test_apps: HashSet<&str> =
            split.test.iter().map(|b| b.id().app.as_str()).collect();
        prop_assert!(train_apps.is_disjoint(&test_apps));
        // Non-degenerate whenever there are at least two applications.
        let all_apps: HashSet<&str> =
            suite.benchmarks().iter().map(|b| b.id().app.as_str()).collect();
        if all_apps.len() >= 2 {
            prop_assert!(!split.train.is_empty());
            prop_assert!(!split.test.is_empty());
        }
    }

    /// Instruction numbers are non-decreasing in every generated trace.
    #[test]
    fn traces_have_monotone_instructions(
        suite_id in any_suite(),
        index in 0usize..4,
    ) {
        let suite = Suite::build(suite_id, 4, 11);
        let trace = suite.benchmarks()[index].generate(1500);
        let mut prev = 0u64;
        for a in &trace {
            prop_assert!(a.instr >= prev);
            prev = a.instr;
        }
    }
}
