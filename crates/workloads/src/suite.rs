//! Suite registry and train/test splitting.

use crate::bench::{Benchmark, BenchmarkId, Recipe};
use crate::ligra::LigraAlgorithm;
use crate::polybench;
use crate::spec;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The three benchmark suites of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SuiteId {
    /// SPEC CPU 2006/2017-like mixed-phase applications.
    Spec,
    /// Ligra-like graph analytics.
    Ligra,
    /// Polybench-like affine kernels.
    Polybench,
}

impl SuiteId {
    /// All suites in registry order.
    pub const ALL: [SuiteId; 3] = [SuiteId::Spec, SuiteId::Ligra, SuiteId::Polybench];
}

impl fmt::Display for SuiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SuiteId::Spec => "spec",
            SuiteId::Ligra => "ligra",
            SuiteId::Polybench => "polybench",
        })
    }
}

/// A generated suite: an ordered list of benchmarks.
///
/// # Example
///
/// ```
/// use cachebox_workloads::{Suite, SuiteId};
///
/// let suite = Suite::build(SuiteId::Ligra, 10, 7);
/// assert_eq!(suite.benchmarks().len(), 10);
/// let split = suite.split_80_20(1);
/// assert_eq!(split.train.len() + split.test.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    id: SuiteId,
    benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// Builds `count` benchmarks of suite `id`, deterministically from
    /// `seed`. Benchmarks cycle through the suite's applications,
    /// assigning increasing phase indices, so large counts give multiple
    /// traced phases per application (as in DPC3).
    pub fn build(id: SuiteId, count: usize, seed: u64) -> Self {
        let benchmarks = (0..count).map(|i| make_benchmark(id, i, seed)).collect();
        Suite { id, benchmarks }
    }

    /// The suite's identity.
    pub fn id(&self) -> SuiteId {
        self.id
    }

    /// The benchmarks, in registry order.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Splits 80/20 into train and test sets, *grouping all phases of an
    /// application on the same side* — the paper's rule that no program
    /// appears in both sets (§4.1).
    pub fn split_80_20(&self, seed: u64) -> Split {
        let mut by_app: BTreeMap<&str, Vec<&Benchmark>> = BTreeMap::new();
        for b in &self.benchmarks {
            by_app.entry(&b.id().app).or_default().push(b);
        }
        let mut apps: Vec<&str> = by_app.keys().copied().collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        apps.shuffle(&mut rng);
        // Cut at 80% of the *benchmark* count, walking whole apps. When
        // more than one application exists, both sides are guaranteed
        // non-empty.
        let target_train = ((self.benchmarks.len() * 4) / 5).max(1);
        let mut train: Vec<Benchmark> = Vec::new();
        let mut test: Vec<Benchmark> = Vec::new();
        let mut in_train = 0usize;
        let last_app = apps.len().saturating_sub(1);
        for (i, app) in apps.into_iter().enumerate() {
            let group = &by_app[app];
            let force_test = i == last_app && test.is_empty() && !train.is_empty();
            if in_train < target_train && !force_test {
                in_train += group.len();
                train.extend(group.iter().map(|&b| b.clone()));
            } else {
                test.extend(group.iter().map(|&b| b.clone()));
            }
        }
        Split { train, test }
    }
}

/// A train/test partition of benchmarks.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Split {
    /// Training benchmarks.
    pub train: Vec<Benchmark>,
    /// Held-out test benchmarks (unseen applications).
    pub test: Vec<Benchmark>,
}

impl Split {
    /// Merges another split into this one (suite-wise union).
    pub fn merge(&mut self, other: Split) {
        self.train.extend(other.train);
        self.test.extend(other.test);
    }
}

/// The full dataset: all three suites with a common split.
///
/// # Example
///
/// ```
/// use cachebox_workloads::Dataset;
///
/// // A scaled-down analogue of the paper's 189/100/32 suite sizes.
/// let ds = Dataset::build(18, 10, 6, 42);
/// assert_eq!(ds.split.train.len() + ds.split.test.len(), 34);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Per-suite registries.
    pub suites: Vec<Suite>,
    /// The combined 80/20 split.
    pub split: Split,
}

impl Dataset {
    /// Builds the three suites with the given sizes and a shared seed,
    /// splitting each suite 80/20 and merging the splits (the paper's
    /// procedure: each suite is split independently, then batches mix).
    pub fn build(spec: usize, ligra: usize, polybench: usize, seed: u64) -> Self {
        let suites = vec![
            Suite::build(SuiteId::Spec, spec, seed),
            Suite::build(SuiteId::Ligra, ligra, seed.wrapping_add(1)),
            Suite::build(SuiteId::Polybench, polybench, seed.wrapping_add(2)),
        ];
        let mut split = Split::default();
        for (i, suite) in suites.iter().enumerate() {
            split.merge(suite.split_80_20(seed.wrapping_add(i as u64 * 101)));
        }
        Dataset { suites, split }
    }

    /// Paper-scale dataset: 189 SPEC, 100 Ligra, 32 Polybench.
    pub fn paper_scale(seed: u64) -> Self {
        Self::build(189, 100, 32, seed)
    }
}

fn make_benchmark(id: SuiteId, index: usize, seed: u64) -> Benchmark {
    match id {
        SuiteId::Spec => {
            let app = spec::APP_NAMES[index % spec::APP_NAMES.len()];
            let phase = (index / spec::APP_NAMES.len()) as u32;
            Benchmark::new(
                BenchmarkId { suite: id, app: app.to_string(), phase },
                spec::phase_name(app, phase),
                Recipe::Spec { seed },
            )
        }
        SuiteId::Ligra => {
            let algorithms = LigraAlgorithm::ALL;
            let sizes: [(usize, usize); 4] = [(400, 3), (800, 4), (1500, 4), (3000, 5)];
            let alg = algorithms[index % algorithms.len()];
            let size_idx = (index / algorithms.len()) % sizes.len();
            let phase = (index / (algorithms.len() * sizes.len())) as u32;
            let (vertices, attach) = sizes[size_idx];
            let app = format!("{}_rMat_{}", alg.binary_name(), vertices);
            Benchmark::new(
                BenchmarkId { suite: id, app: app.clone(), phase },
                if phase == 0 { app } else { format!("{}_p{}", alg.binary_name(), phase) },
                Recipe::Ligra {
                    algorithm: alg,
                    vertices,
                    attach,
                    seed: seed.wrapping_add(index as u64),
                },
            )
        }
        SuiteId::Polybench => {
            let name = polybench::KERNEL_NAMES[index % polybench::KERNEL_NAMES.len()];
            let size_class = ((index / polybench::KERNEL_NAMES.len()) % 3) as u8;
            let phase = (index / polybench::KERNEL_NAMES.len()) as u32;
            let suffix = ["s", "m", "l"][size_class as usize];
            Benchmark::new(
                BenchmarkId { suite: id, app: name.to_string(), phase },
                format!("{name}_{suffix}"),
                Recipe::Polybench { kernel: polybench::recipe_for(name, size_class) },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_sizes_are_exact() {
        for id in SuiteId::ALL {
            let suite = Suite::build(id, 13, 5);
            assert_eq!(suite.benchmarks().len(), 13);
        }
    }

    #[test]
    fn split_never_divides_an_app() {
        let suite = Suite::build(SuiteId::Spec, 60, 3);
        let split = suite.split_80_20(1);
        let train_apps: HashSet<&str> = split.train.iter().map(|b| b.id().app.as_str()).collect();
        let test_apps: HashSet<&str> = split.test.iter().map(|b| b.id().app.as_str()).collect();
        assert!(train_apps.is_disjoint(&test_apps), "apps leaked across the split");
        assert_eq!(split.train.len() + split.test.len(), 60);
    }

    #[test]
    fn split_ratio_is_roughly_80_20() {
        let suite = Suite::build(SuiteId::Spec, 100, 3);
        let split = suite.split_80_20(1);
        let frac = split.train.len() as f64 / 100.0;
        assert!((0.7..=0.95).contains(&frac), "train fraction {frac}");
        assert!(!split.test.is_empty());
    }

    #[test]
    fn split_is_deterministic() {
        let suite = Suite::build(SuiteId::Ligra, 24, 9);
        assert_eq!(suite.split_80_20(4), suite.split_80_20(4));
    }

    #[test]
    fn phases_assigned_beyond_app_count() {
        let suite = Suite::build(SuiteId::Spec, spec::APP_NAMES.len() * 2, 5);
        let last = suite.benchmarks().last().unwrap();
        assert_eq!(last.id().phase, 1, "second cycle gets phase 1");
    }

    #[test]
    fn display_names_unique_within_suite() {
        let suite = Suite::build(SuiteId::Spec, 52, 5);
        let names: HashSet<&str> = suite.benchmarks().iter().map(|b| b.display_name()).collect();
        assert_eq!(names.len(), 52, "display names must be unique");
    }

    #[test]
    fn dataset_builds_all_suites() {
        let ds = Dataset::build(10, 8, 6, 2);
        assert_eq!(ds.suites.len(), 3);
        assert_eq!(ds.suites[0].id(), SuiteId::Spec);
        let total: usize = ds.suites.iter().map(|s| s.benchmarks().len()).sum();
        assert_eq!(total, 24);
        assert_eq!(ds.split.train.len() + ds.split.test.len(), 24);
    }

    #[test]
    fn benchmarks_generate_nonempty_traces() {
        let ds = Dataset::build(3, 3, 3, 11);
        for suite in &ds.suites {
            for b in suite.benchmarks() {
                let t = b.generate(2000);
                assert!(t.len() >= 2000, "{}", b.id());
            }
        }
    }
}
