//! Synthetic benchmark suites for CacheBox.
//!
//! The paper trains and evaluates on Pin-collected traces of SPEC 2006/
//! 2017, Ligra, and Polybench. Those traces are proprietary and tens of
//! gigabytes, so this reproduction substitutes *synthetic suites* whose
//! generators reproduce the same structural families of memory behaviour:
//!
//! * [`polybench`] — affine loop-nest kernels (GEMM, stencils,
//!   matrix-vector, triangular solves) with regular streaming and banded
//!   reuse, named after the 30 real Polybench kernels.
//! * [`ligra`] — graph analytics (BFS, PageRank, label-propagation
//!   components, betweenness-like sweeps) over synthetic power-law graphs
//!   built by preferential attachment.
//! * [`spec`] — mixed-phase programs composed of pointer chasing, GUPS,
//!   streaming, zipfian working sets, blocked matmul and hash-join phases,
//!   echoing SPEC's skew toward high L1 hit rates (paper Fig. 14).
//!
//! Every [`Benchmark`] is a pure function of its identity (suite, name,
//! phase, seed): generating it twice yields the identical trace.
//!
//! # Example
//!
//! ```
//! use cachebox_workloads::{Suite, SuiteId};
//!
//! let suite = Suite::build(SuiteId::Polybench, 8, 42);
//! let bench = &suite.benchmarks()[0];
//! let trace = bench.generate(10_000);
//! assert!(trace.len() >= 10_000);
//! assert_eq!(trace, bench.generate(10_000), "generation is deterministic");
//! ```

pub mod bench;
pub mod graph;
pub mod kernels;
pub mod ligra;
pub mod polybench;
pub mod spec;
pub mod suite;

pub use bench::{Benchmark, BenchmarkId, Recipe};
pub use suite::{Dataset, Split, Suite, SuiteId};
