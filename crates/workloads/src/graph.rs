//! Synthetic power-law graphs for the Ligra-like suite.

use rand::rngs::StdRng;
use rand::Rng;

/// A directed graph in compressed sparse row (CSR) form.
///
/// # Example
///
/// ```
/// use cachebox_workloads::graph::Csr;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = Csr::power_law(500, 4, &mut rng);
/// assert_eq!(g.vertices(), 500);
/// assert!(g.edges() >= 4 * 499);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an adjacency list.
    pub fn from_adjacency(adj: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for neighbours in adj {
            targets.extend_from_slice(neighbours);
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Generates a power-law graph by preferential attachment
    /// (Barabási–Albert): each new vertex attaches `m` edges to existing
    /// vertices chosen proportionally to their current degree. Edges are
    /// stored in both directions so traversals reach hub vertices often.
    ///
    /// # Panics
    ///
    /// Panics if `vertices < 2` or `m == 0`.
    pub fn power_law(vertices: usize, m: usize, rng: &mut StdRng) -> Self {
        assert!(vertices >= 2, "need at least two vertices");
        assert!(m > 0, "attachment degree must be non-zero");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); vertices];
        // Repeated-endpoint list: sampling uniformly from it implements
        // degree-proportional selection.
        let mut endpoints: Vec<u32> = vec![0, 1];
        adj[0].push(1);
        adj[1].push(0);
        for v in 2..vertices {
            for _ in 0..m.min(v) {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                adj[v].push(t);
                adj[t as usize].push(v as u32);
                endpoints.push(t);
                endpoints.push(v as u32);
            }
        }
        Csr::from_adjacency(&adj)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbours of vertex `v`.
    pub fn neighbours(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of vertex `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbours(v).len()
    }

    /// Byte offset of `offsets[v]` within a CSR memory image, for trace
    /// synthesis (4-byte entries).
    pub fn offsets_byte(&self, v: u32) -> u64 {
        v as u64 * 4
    }

    /// Byte offset of the edge-array entry `e` (4-byte entries).
    pub fn edge_byte(&self, e: usize) -> u64 {
        e as u64 * 4
    }

    /// Index of the first edge of vertex `v` in the edge array.
    pub fn edge_start(&self, v: u32) -> usize {
        self.offsets[v as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn power_law_degrees_are_skewed() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Csr::power_law(2000, 4, &mut rng);
        let mut degrees: Vec<usize> = (0..g.vertices()).map(|v| g.degree(v as u32)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degrees[..20].iter().sum();
        let total: usize = degrees.iter().sum();
        assert!(
            top1pct as f64 / total as f64 > 0.05,
            "hubs should hold a disproportionate share of edges"
        );
        assert_eq!(total, g.edges());
    }

    #[test]
    fn csr_roundtrip() {
        let adj = vec![vec![1, 2], vec![0], vec![]];
        let g = Csr::from_adjacency(&adj);
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.edges(), 3);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(2), &[] as &[u32]);
        assert_eq!(g.edge_start(1), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Csr::power_law(300, 3, &mut StdRng::seed_from_u64(5));
        let b = Csr::power_law(300, 3, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_connected_by_construction() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = Csr::power_law(200, 2, &mut rng);
        // BFS from 0 reaches everything (undirected edge insertion).
        let mut seen = vec![false; g.vertices()];
        let mut queue = std::collections::VecDeque::from([0u32]);
        seen[0] = true;
        while let Some(v) = queue.pop_front() {
            for &t in g.neighbours(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn rejects_tiny_graph() {
        Csr::power_law(1, 1, &mut StdRng::seed_from_u64(0));
    }
}
