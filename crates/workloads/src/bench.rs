//! The [`Benchmark`] type: a named, deterministic trace generator.

use crate::ligra::{self, LigraAlgorithm};
use crate::polybench::{self, PolyKernel};
use crate::spec;
use crate::suite::SuiteId;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a benchmark: suite, application, and traced phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BenchmarkId {
    /// Owning suite.
    pub suite: SuiteId,
    /// Application name (phases of one application share this).
    pub app: String,
    /// Traced phase index within the application.
    pub phase: u32,
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}#{}", self.suite, self.app, self.phase)
    }
}

/// How a benchmark's trace is produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Recipe {
    /// SPEC-like mixed-phase generator.
    Spec {
        /// Root seed for the generator.
        seed: u64,
    },
    /// Ligra-like graph analytics.
    Ligra {
        /// Algorithm to run.
        algorithm: LigraAlgorithm,
        /// Graph vertex count.
        vertices: usize,
        /// Preferential-attachment degree.
        attach: usize,
        /// Root seed.
        seed: u64,
    },
    /// Polybench-like affine kernel.
    Polybench {
        /// Kernel recipe.
        kernel: PolyKernel,
    },
}

/// A named, fully deterministic synthetic benchmark.
///
/// Generating the same benchmark twice yields identical traces, so
/// ground-truth simulation, heatmap construction, and model evaluation
/// are all reproducible without storing traces on disk.
///
/// # Example
///
/// ```
/// use cachebox_workloads::{Suite, SuiteId};
///
/// let suite = Suite::build(SuiteId::Spec, 4, 1);
/// let b = &suite.benchmarks()[0];
/// println!("{} ({})", b.display_name(), b.id());
/// assert_eq!(b.id().suite, SuiteId::Spec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    id: BenchmarkId,
    display_name: String,
    recipe: Recipe,
}

impl Benchmark {
    /// Creates a benchmark from its parts.
    pub fn new(id: BenchmarkId, display_name: String, recipe: Recipe) -> Self {
        Benchmark { id, display_name, recipe }
    }

    /// The benchmark's identity.
    pub fn id(&self) -> &BenchmarkId {
        &self.id
    }

    /// Human-readable trace name (e.g. `602.gcc_s-734B`,
    /// `BFS_rMat_2000`, `jacobi-2d_m`).
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// The generator recipe.
    pub fn recipe(&self) -> &Recipe {
        &self.recipe
    }

    /// Generates the benchmark's trace with at least `target_accesses`
    /// accesses. Deterministic: equal inputs give equal traces.
    pub fn generate(&self, target_accesses: usize) -> Trace {
        match &self.recipe {
            Recipe::Spec { seed } => {
                spec::generate(&self.id.app, self.id.phase, *seed, target_accesses)
            }
            Recipe::Ligra { algorithm, vertices, attach, seed } => ligra::generate(
                *algorithm,
                *vertices,
                *attach,
                seed.wrapping_add(self.id.phase as u64),
                target_accesses,
            ),
            Recipe::Polybench { kernel } => polybench::generate(*kernel, target_accesses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_bench() -> Benchmark {
        Benchmark::new(
            BenchmarkId { suite: SuiteId::Spec, app: "602.gcc_s".into(), phase: 0 },
            "602.gcc_s-734B".into(),
            Recipe::Spec { seed: 9 },
        )
    }

    #[test]
    fn generate_is_deterministic() {
        let b = spec_bench();
        assert_eq!(b.generate(4000), b.generate(4000));
    }

    #[test]
    fn id_display() {
        let b = spec_bench();
        assert_eq!(b.id().to_string(), "spec/602.gcc_s#0");
        assert_eq!(b.display_name(), "602.gcc_s-734B");
    }

    #[test]
    fn ligra_recipe_phases_differ() {
        let make = |phase| {
            Benchmark::new(
                BenchmarkId { suite: SuiteId::Ligra, app: "BFS".into(), phase },
                format!("BFS#{phase}"),
                Recipe::Ligra { algorithm: LigraAlgorithm::Bfs, vertices: 300, attach: 3, seed: 4 },
            )
        };
        assert_ne!(make(0).generate(3000), make(1).generate(3000));
    }
}
