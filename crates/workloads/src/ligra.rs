//! Ligra-like graph analytics workloads.
//!
//! Each algorithm replays the memory access skeleton of its Ligra
//! counterpart over a synthetic power-law [`Csr`] graph: sequential scans
//! of the offsets/edge arrays interleaved with data-dependent gathers and
//! scatters into per-vertex property arrays. The resulting traces mix
//! streaming locality (edge lists) with irregular reuse (hub vertices).

use crate::graph::Csr;
use crate::kernels::RegionAllocator;
use cachebox_trace::trace::TraceBuilder;
use cachebox_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Ligra-like algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LigraAlgorithm {
    /// Frontier-based breadth-first search.
    Bfs,
    /// Pull-style PageRank iterations.
    PageRank,
    /// Label-propagation connected components.
    Components,
    /// Repeated single-source sweeps (betweenness-centrality-like).
    BcSweeps,
    /// Iterative k-core peeling (degree-array heavy).
    KCore,
    /// Multi-source BFS radius estimation.
    Radii,
}

impl LigraAlgorithm {
    /// All algorithms, in registry order.
    pub const ALL: [LigraAlgorithm; 6] = [
        LigraAlgorithm::Bfs,
        LigraAlgorithm::PageRank,
        LigraAlgorithm::Components,
        LigraAlgorithm::BcSweeps,
        LigraAlgorithm::KCore,
        LigraAlgorithm::Radii,
    ];

    /// Ligra-style binary name (e.g. `BFS`).
    pub const fn binary_name(self) -> &'static str {
        match self {
            LigraAlgorithm::Bfs => "BFS",
            LigraAlgorithm::PageRank => "PageRank",
            LigraAlgorithm::Components => "Components",
            LigraAlgorithm::BcSweeps => "BC",
            LigraAlgorithm::KCore => "KCore",
            LigraAlgorithm::Radii => "Radii",
        }
    }
}

/// Memory image of the graph plus property arrays.
struct GraphLayout {
    offsets: cachebox_trace::Address,
    edges: cachebox_trace::Address,
    prop_a: cachebox_trace::Address,
    prop_b: cachebox_trace::Address,
}

impl GraphLayout {
    fn new(alloc: &mut RegionAllocator, g: &Csr) -> Self {
        GraphLayout {
            offsets: alloc.alloc((g.vertices() as u64 + 1) * 4),
            edges: alloc.alloc(g.edges() as u64 * 4),
            prop_a: alloc.alloc(g.vertices() as u64 * 8),
            prop_b: alloc.alloc(g.vertices() as u64 * 8),
        }
    }
}

/// Generates a Ligra-like trace.
///
/// `vertices`/`attach` control the synthetic graph; `seed` fixes both the
/// graph and traversal randomness; the trace has at least `target`
/// accesses (give or take one vertex's worth).
pub fn generate(
    algorithm: LigraAlgorithm,
    vertices: usize,
    attach: usize,
    seed: u64,
    target: usize,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Csr::power_law(vertices, attach, &mut rng);
    let mut alloc = RegionAllocator::new();
    let layout = GraphLayout::new(&mut alloc, &g);
    let mut b = TraceBuilder::new();
    while b.len() < target {
        match algorithm {
            LigraAlgorithm::Bfs => bfs_pass(&mut b, &g, &layout, &mut rng, target),
            LigraAlgorithm::PageRank => pagerank_pass(&mut b, &g, &layout, target),
            LigraAlgorithm::Components => components_pass(&mut b, &g, &layout, target),
            LigraAlgorithm::BcSweeps => {
                bfs_pass(&mut b, &g, &layout, &mut rng, target);
                // Backward accumulation sweep over properties.
                for v in (0..g.vertices() as u32).rev() {
                    b.load(layout.prop_a.offset(v as i64 * 8));
                    b.store(layout.prop_b.offset(v as i64 * 8));
                    if b.len() >= target {
                        break;
                    }
                }
            }
            LigraAlgorithm::KCore => kcore_pass(&mut b, &g, &layout, target),
            LigraAlgorithm::Radii => {
                // A handful of BFS sweeps from random sources, with a
                // radius-array update between sweeps.
                for _ in 0..4 {
                    bfs_pass(&mut b, &g, &layout, &mut rng, target);
                    for v in 0..g.vertices() as u32 {
                        b.load(layout.prop_b.offset(v as i64 * 8));
                        b.store(layout.prop_b.offset(v as i64 * 8));
                        if b.len() >= target {
                            break;
                        }
                    }
                    if b.len() >= target {
                        break;
                    }
                }
            }
        }
    }
    b.finish()
}

fn visit_edges(
    b: &mut TraceBuilder,
    g: &Csr,
    layout: &GraphLayout,
    v: u32,
    target: usize,
    mut per_edge: impl FnMut(&mut TraceBuilder, u32),
) -> bool {
    // Read offsets[v] and offsets[v+1] (often the same cache block).
    b.load(layout.offsets.offset(g.offsets_byte(v) as i64));
    let start = g.edge_start(v);
    for (k, &t) in g.neighbours(v).iter().enumerate() {
        // Sequential edge-array read, then the data-dependent access.
        b.load(layout.edges.offset(g.edge_byte(start + k) as i64));
        per_edge(b, t);
        b.skip_instructions(2);
        if b.len() >= target {
            return true;
        }
    }
    false
}

fn bfs_pass(b: &mut TraceBuilder, g: &Csr, layout: &GraphLayout, rng: &mut StdRng, target: usize) {
    let root = rng.gen_range(0..g.vertices() as u32);
    let mut seen = vec![false; g.vertices()];
    let mut queue = VecDeque::from([root]);
    seen[root as usize] = true;
    while let Some(v) = queue.pop_front() {
        let done = visit_edges(b, g, layout, v, target, |b, t| {
            // visited-bit check: scattered property read (+write on first
            // touch).
            b.load(layout.prop_a.offset(t as i64 * 8));
            if !seen[t as usize] {
                seen[t as usize] = true;
                b.store(layout.prop_a.offset(t as i64 * 8));
                queue.push_back(t);
            }
        });
        if done {
            return;
        }
    }
}

fn pagerank_pass(b: &mut TraceBuilder, g: &Csr, layout: &GraphLayout, target: usize) {
    for v in 0..g.vertices() as u32 {
        let done = visit_edges(b, g, layout, v, target, |b, t| {
            // Pull the neighbour's current rank.
            b.load(layout.prop_a.offset(t as i64 * 8));
        });
        b.store(layout.prop_b.offset(v as i64 * 8));
        if done {
            return;
        }
    }
}

fn kcore_pass(b: &mut TraceBuilder, g: &Csr, layout: &GraphLayout, target: usize) {
    // Peeling rounds: scan the degree array, "remove" low-degree
    // vertices by touching their neighbours' degrees.
    let mut degrees: Vec<usize> = (0..g.vertices() as u32).map(|v| g.degree(v)).collect();
    let mut threshold = 1usize;
    while b.len() < target {
        let mut removed_any = false;
        for v in 0..g.vertices() as u32 {
            b.load(layout.prop_a.offset(v as i64 * 8)); // degree read
            if degrees[v as usize] > 0 && degrees[v as usize] <= threshold {
                removed_any = true;
                degrees[v as usize] = 0;
                let done = visit_edges(b, g, layout, v, target, |b, t| {
                    // Decrement each neighbour's degree.
                    b.load(layout.prop_a.offset(t as i64 * 8));
                    b.store(layout.prop_a.offset(t as i64 * 8));
                });
                if done {
                    return;
                }
            }
            if b.len() >= target {
                return;
            }
        }
        if !removed_any {
            threshold += 1;
            if threshold > g.vertices() {
                // Everything peeled: restart the peel for long traces.
                for (v, d) in degrees.iter_mut().enumerate() {
                    *d = g.degree(v as u32);
                }
                threshold = 1;
            }
        }
    }
}

fn components_pass(b: &mut TraceBuilder, g: &Csr, layout: &GraphLayout, target: usize) {
    for v in 0..g.vertices() as u32 {
        b.load(layout.prop_a.offset(v as i64 * 8));
        let done = visit_edges(b, g, layout, v, target, |b, t| {
            b.load(layout.prop_a.offset(t as i64 * 8));
        });
        b.store(layout.prop_a.offset(v as i64 * 8));
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_generate_target_accesses() {
        for alg in LigraAlgorithm::ALL {
            let t = generate(alg, 400, 3, 11, 8000);
            assert!(t.len() >= 8000, "{alg:?} produced {}", t.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(LigraAlgorithm::PageRank, 300, 3, 5, 5000);
        let b = generate(LigraAlgorithm::PageRank, 300, 3, 5, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(LigraAlgorithm::Bfs, 300, 3, 1, 5000);
        let b = generate(LigraAlgorithm::Bfs, 300, 3, 2, 5000);
        assert_ne!(a, b);
    }

    #[test]
    fn traces_mix_streaming_and_irregular() {
        // Graph analytics land between streaming (hit rate → 1) and pure
        // random over a large footprint (hit rate → 0) on a small L1.
        let t = generate(LigraAlgorithm::PageRank, 600, 4, 3, 10_000);
        let mut cache = cachebox_sim::Cache::new(cachebox_sim::CacheConfig::new(64, 12));
        let hit_rate = cache.run(&t).hit_rate();
        assert!((0.3..0.999).contains(&hit_rate), "hit rate {hit_rate}");
    }

    #[test]
    fn binary_names() {
        assert_eq!(LigraAlgorithm::Bfs.binary_name(), "BFS");
        assert_eq!(LigraAlgorithm::BcSweeps.binary_name(), "BC");
    }
}
