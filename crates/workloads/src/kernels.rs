//! Low-level memory access pattern emitters.
//!
//! Each kernel appends accesses to a [`TraceBuilder`] until it has emitted
//! roughly the requested number of accesses. Kernels model the data-access
//! skeleton of common computational idioms; arithmetic instructions are
//! represented by [`TraceBuilder::skip_instructions`] gaps so the
//! instruction axis of heatmaps advances realistically.

use cachebox_trace::trace::TraceBuilder;
use cachebox_trace::Address;
use rand::rngs::StdRng;
use rand::Rng;

/// Element size used by numeric kernels (a double).
pub const ELEM: u64 = 8;

/// Hands out non-overlapping base addresses for synthetic arrays.
///
/// Regions are aligned to 4 KiB and separated by a guard page so distinct
/// arrays never share a cache block.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    next: u64,
}

impl RegionAllocator {
    /// Creates an allocator starting at the conventional heap base.
    pub fn new() -> Self {
        RegionAllocator { next: 0x1000_0000 }
    }

    /// Reserves `bytes` and returns the region's base address.
    pub fn alloc(&mut self, bytes: u64) -> Address {
        let base = self.next;
        let aligned = (bytes + 0xfff) & !0xfff;
        self.next = base + aligned + 0x1000; // guard page
        Address::new(base)
    }
}

impl Default for RegionAllocator {
    fn default() -> Self {
        RegionAllocator::new()
    }
}

/// STREAM-style triad: `c[i] = a[i] + s * b[i]` repeated over the arrays.
pub fn stream_triad(b: &mut TraceBuilder, alloc: &mut RegionAllocator, n: u64, target: usize) {
    let a = alloc.alloc(n * ELEM);
    let bb = alloc.alloc(n * ELEM);
    let c = alloc.alloc(n * ELEM);
    while b.len() < target {
        for i in 0..n {
            b.load(a.offset((i * ELEM) as i64));
            b.load(bb.offset((i * ELEM) as i64));
            b.store(c.offset((i * ELEM) as i64));
            b.skip_instructions(2);
            if b.len() >= target {
                return;
            }
        }
    }
}

/// Blocked dense matrix multiply `C += A * B` over `n × n` doubles with
/// `bs × bs` tiles (row-major).
pub fn blocked_matmul(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    n: u64,
    bs: u64,
    target: usize,
) {
    let a = alloc.alloc(n * n * ELEM);
    let bm = alloc.alloc(n * n * ELEM);
    let c = alloc.alloc(n * n * ELEM);
    let idx = |i: u64, j: u64| ((i * n + j) * ELEM) as i64;
    loop {
        for ii in (0..n).step_by(bs as usize) {
            for jj in (0..n).step_by(bs as usize) {
                for kk in (0..n).step_by(bs as usize) {
                    for i in ii..(ii + bs).min(n) {
                        for j in jj..(jj + bs).min(n) {
                            b.load(c.offset(idx(i, j)));
                            for k in kk..(kk + bs).min(n) {
                                b.load(a.offset(idx(i, k)));
                                b.load(bm.offset(idx(k, j)));
                                b.skip_instructions(1);
                                if b.len() >= target {
                                    return;
                                }
                            }
                            b.store(c.offset(idx(i, j)));
                        }
                    }
                }
            }
        }
    }
}

/// 5-point Jacobi stencil over an `n × n` grid, ping-ponging between two
/// buffers for `target` accesses.
pub fn jacobi_2d(b: &mut TraceBuilder, alloc: &mut RegionAllocator, n: u64, target: usize) {
    let src = alloc.alloc(n * n * ELEM);
    let dst = alloc.alloc(n * n * ELEM);
    let bufs = [src, dst];
    let idx = |i: u64, j: u64| ((i * n + j) * ELEM) as i64;
    let mut step = 0usize;
    loop {
        let (from, to) = (bufs[step % 2], bufs[(step + 1) % 2]);
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b.load(from.offset(idx(i - 1, j)));
                b.load(from.offset(idx(i + 1, j)));
                b.load(from.offset(idx(i, j - 1)));
                b.load(from.offset(idx(i, j + 1)));
                b.load(from.offset(idx(i, j)));
                b.store(to.offset(idx(i, j)));
                b.skip_instructions(3);
                if b.len() >= target {
                    return;
                }
            }
        }
        step += 1;
    }
}

/// Gauss–Seidel-style in-place sweep (strong sequential dependence, one
/// buffer) over an `n × n` grid.
pub fn seidel_2d(b: &mut TraceBuilder, alloc: &mut RegionAllocator, n: u64, target: usize) {
    let g = alloc.alloc(n * n * ELEM);
    let idx = |i: u64, j: u64| ((i * n + j) * ELEM) as i64;
    loop {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                for (di, dj) in [(0i64, -1i64), (-1, 0), (0, 0), (1, 0), (0, 1)] {
                    let ii = (i as i64 + di) as u64;
                    let jj = (j as i64 + dj) as u64;
                    b.load(g.offset(idx(ii, jj)));
                }
                b.store(g.offset(idx(i, j)));
                b.skip_instructions(2);
                if b.len() >= target {
                    return;
                }
            }
        }
    }
}

/// Matrix-vector product `y = A^T (A x)` (ATAX-like): a row-streaming pass
/// with a reused vector.
pub fn atax(b: &mut TraceBuilder, alloc: &mut RegionAllocator, n: u64, target: usize) {
    let a = alloc.alloc(n * n * ELEM);
    let x = alloc.alloc(n * ELEM);
    let y = alloc.alloc(n * ELEM);
    let tmp = alloc.alloc(n * ELEM);
    let idx = |i: u64, j: u64| ((i * n + j) * ELEM) as i64;
    loop {
        for i in 0..n {
            for j in 0..n {
                b.load(a.offset(idx(i, j)));
                b.load(x.offset((j * ELEM) as i64));
                b.skip_instructions(1);
                if b.len() >= target {
                    return;
                }
            }
            b.store(tmp.offset((i * ELEM) as i64));
        }
        for i in 0..n {
            for j in 0..n {
                b.load(a.offset(idx(i, j)));
                b.load(tmp.offset((i * ELEM) as i64));
                if b.len() >= target {
                    return;
                }
            }
            b.store(y.offset((i * ELEM) as i64));
        }
    }
}

/// Lower-triangular solve-like sweep (LU/trisolv family): triangular
/// iteration space with row reuse.
pub fn triangular_sweep(b: &mut TraceBuilder, alloc: &mut RegionAllocator, n: u64, target: usize) {
    let a = alloc.alloc(n * n * ELEM);
    let x = alloc.alloc(n * ELEM);
    let idx = |i: u64, j: u64| ((i * n + j) * ELEM) as i64;
    loop {
        for i in 0..n {
            for j in 0..=i {
                b.load(a.offset(idx(i, j)));
                b.load(x.offset((j * ELEM) as i64));
                b.skip_instructions(1);
                if b.len() >= target {
                    return;
                }
            }
            b.store(x.offset((i * ELEM) as i64));
        }
    }
}

/// Pointer chase over a random cycle of `nodes` 64-byte nodes.
pub fn pointer_chase(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    nodes: u64,
    target: usize,
) {
    let base = alloc.alloc(nodes * 64);
    // Sattolo's algorithm: a single random cycle through all nodes.
    let mut next: Vec<u64> = (0..nodes).collect();
    for i in (1..nodes as usize).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let mut cur = 0u64;
    while b.len() < target {
        b.load(base.offset((cur * 64) as i64));
        b.skip_instructions(4);
        cur = next[cur as usize];
    }
}

/// GUPS-style random read-modify-write over a `table_blocks`-block table.
pub fn gups(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    table_blocks: u64,
    target: usize,
) {
    let base = alloc.alloc(table_blocks * 64);
    while b.len() < target {
        let slot = rng.gen_range(0..table_blocks);
        let addr = base.offset((slot * 64) as i64);
        b.load(addr);
        b.store(addr);
        b.skip_instructions(2);
    }
}

/// Precomputed zipfian sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler with exponent `s` over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Zipfian working-set accesses over `blocks` 64-byte blocks with
/// exponent `s` and `store_prob` probability of a store.
pub fn zipf_working_set(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    blocks: u64,
    s: f64,
    store_prob: f64,
    target: usize,
) {
    let base = alloc.alloc(blocks * 64);
    let zipf = Zipf::new(blocks as usize, s);
    // A fixed random permutation decouples popularity rank from address
    // order so the hot set is scattered in space.
    let mut perm: Vec<u64> = (0..blocks).collect();
    for i in (1..blocks as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    while b.len() < target {
        let rank = zipf.sample(rng);
        let addr = base.offset((perm[rank] * 64) as i64);
        if rng.gen_bool(store_prob) {
            b.store(addr);
        } else {
            b.load(addr);
        }
        b.skip_instructions(3);
    }
}

/// Hash-join-like phases: a sequential build over the small table then
/// random probes of it driven by a streaming outer table.
pub fn hash_join(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    build_blocks: u64,
    probe_rows: u64,
    target: usize,
) {
    let ht = alloc.alloc(build_blocks * 64);
    let outer = alloc.alloc(probe_rows * ELEM);
    // Build phase.
    for i in 0..build_blocks {
        b.store(ht.offset((i * 64) as i64));
        b.skip_instructions(2);
        if b.len() >= target {
            return;
        }
    }
    // Probe phase.
    let mut row = 0u64;
    while b.len() < target {
        b.load(outer.offset(((row % probe_rows) * ELEM) as i64));
        let slot = rng.gen_range(0..build_blocks);
        b.load(ht.offset((slot * 64) as i64));
        b.skip_instructions(3);
        row += 1;
    }
}

/// Hot/cold mixture: accesses hit a small hot region with probability
/// `hot_prob`, else a large cold region (both uniformly random).
pub fn hot_cold(
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    hot_blocks: u64,
    cold_blocks: u64,
    hot_prob: f64,
    target: usize,
) {
    let hot = alloc.alloc(hot_blocks * 64);
    let cold = alloc.alloc(cold_blocks * 64);
    while b.len() < target {
        let addr = if rng.gen_bool(hot_prob) {
            hot.offset((rng.gen_range(0..hot_blocks) * 64) as i64)
        } else {
            cold.offset((rng.gen_range(0..cold_blocks) * 64) as i64)
        };
        b.load(addr);
        b.skip_instructions(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run<F: FnOnce(&mut TraceBuilder, &mut RegionAllocator, &mut StdRng)>(
        f: F,
    ) -> cachebox_trace::Trace {
        let mut b = TraceBuilder::new();
        let mut alloc = RegionAllocator::new();
        let mut rng = StdRng::seed_from_u64(1);
        f(&mut b, &mut alloc, &mut rng);
        b.finish()
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut alloc = RegionAllocator::new();
        let a = alloc.alloc(100);
        let b = alloc.alloc(5000);
        let c = alloc.alloc(1);
        assert!(b.as_u64() >= a.as_u64() + 100);
        assert!(c.as_u64() >= b.as_u64() + 5000);
        assert_eq!(a.as_u64() % 0x1000, 0);
    }

    #[test]
    fn kernels_reach_target_length() {
        let target = 5000;
        let traces = vec![
            run(|b, a, _| stream_triad(b, a, 256, target)),
            run(|b, a, _| blocked_matmul(b, a, 24, 8, target)),
            run(|b, a, _| jacobi_2d(b, a, 24, target)),
            run(|b, a, _| seidel_2d(b, a, 24, target)),
            run(|b, a, _| atax(b, a, 32, target)),
            run(|b, a, _| triangular_sweep(b, a, 32, target)),
            run(|b, a, r| pointer_chase(b, a, r, 512, target)),
            run(|b, a, r| gups(b, a, r, 1024, target)),
            run(|b, a, r| zipf_working_set(b, a, r, 2048, 1.1, 0.2, target)),
            run(|b, a, r| hash_join(b, a, r, 256, 4096, target)),
            run(|b, a, r| hot_cold(b, a, r, 64, 8192, 0.9, target)),
        ];
        for (i, t) in traces.iter().enumerate() {
            assert!(t.len() >= target, "kernel {i} produced only {} accesses", t.len());
            assert!(t.len() < target + 16, "kernel {i} overshot wildly: {}", t.len());
        }
    }

    #[test]
    fn stream_triad_has_unit_stride_structure() {
        let t = run(|b, a, _| stream_triad(b, a, 512, 3000));
        let stats = t.stats();
        // Three interleaved streams: dominant stride patterns exist.
        assert!(stats.stride_regularity() > 0.2);
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        let t = run(|b, a, r| pointer_chase(b, a, r, 64, 64));
        let blocks = t.footprint_blocks(6);
        assert_eq!(blocks.len(), 64, "Sattolo cycle must visit every node once per lap");
    }

    #[test]
    fn zipf_sampler_is_skewed() {
        let zipf = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let head: u64 = counts[..10].iter().sum();
        assert!(head > 20_000 / 4, "top-10 ranks should dominate, got {head}");
        assert!(counts[0] > counts[500].max(1));
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "s=0 should be near-uniform");
    }

    #[test]
    fn determinism_per_seed() {
        let a = run(|b, al, r| zipf_working_set(b, al, r, 512, 1.0, 0.1, 2000));
        let b = run(|b, al, r| zipf_working_set(b, al, r, 512, 1.0, 0.1, 2000));
        assert_eq!(a, b);
    }

    #[test]
    fn hot_cold_footprint_spans_both_regions() {
        let t = run(|b, a, r| hot_cold(b, a, r, 16, 4096, 0.5, 4000));
        assert!(t.footprint_blocks(6).len() > 1000, "cold region must be exercised");
    }
}
