//! Polybench-like affine loop-nest kernels.
//!
//! Thirty kernels named after the real Polybench/C suite, each mapped to
//! one of the affine access-pattern families in [`crate::kernels`]
//! with kernel-specific problem sizes. Problem sizes scale with a `size`
//! knob so the same kernel can be generated at several cache pressures.

use crate::kernels::{self, RegionAllocator};
use cachebox_trace::trace::TraceBuilder;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};

/// The Polybench kernel families this suite models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolyKernel {
    /// Dense matrix multiply (gemm, 2mm, 3mm, …).
    Matmul {
        /// Matrix dimension.
        n: u64,
        /// Tile size.
        block: u64,
    },
    /// Jacobi-style out-of-place stencil.
    Jacobi {
        /// Grid dimension.
        n: u64,
    },
    /// Seidel-style in-place stencil.
    Seidel {
        /// Grid dimension.
        n: u64,
    },
    /// Matrix-vector family (atax, bicg, gemver, gesummv, mvt).
    MatVec {
        /// Matrix dimension.
        n: u64,
    },
    /// Triangular sweeps (lu, cholesky, trisolv, trmm, durbin).
    Triangular {
        /// Matrix dimension.
        n: u64,
    },
}

/// Names of the 30 real Polybench/C 4.2 kernels.
pub const KERNEL_NAMES: [&str; 30] = [
    "2mm",
    "3mm",
    "adi",
    "atax",
    "bicg",
    "cholesky",
    "correlation",
    "covariance",
    "doitgen",
    "durbin",
    "fdtd-2d",
    "floyd-warshall",
    "gemm",
    "gemver",
    "gesummv",
    "gramschmidt",
    "heat-3d",
    "jacobi-1d",
    "jacobi-2d",
    "lu",
    "ludcmp",
    "mvt",
    "nussinov",
    "seidel-2d",
    "symm",
    "syr2k",
    "syrk",
    "trisolv",
    "trmm",
    "deriche",
];

/// Maps a Polybench kernel name to its generator recipe.
///
/// `size_class` (0–2) scales the footprint from cache-friendly to
/// cache-pressuring, producing the hit-rate spread observed across real
/// Polybench runs.
pub fn recipe_for(name: &str, size_class: u8) -> PolyKernel {
    let s = |small: u64, medium: u64, large: u64| match size_class {
        0 => small,
        1 => medium,
        _ => large,
    };
    match name {
        "2mm" | "3mm" | "gemm" | "doitgen" | "symm" | "syr2k" | "syrk" => {
            PolyKernel::Matmul { n: s(24, 48, 96), block: 8 }
        }
        "correlation" | "covariance" | "gramschmidt" | "floyd-warshall" | "nussinov" => {
            PolyKernel::Matmul { n: s(20, 40, 80), block: 4 }
        }
        "jacobi-1d" | "jacobi-2d" | "fdtd-2d" | "heat-3d" | "adi" | "deriche" => {
            PolyKernel::Jacobi { n: s(32, 64, 160) }
        }
        "seidel-2d" => PolyKernel::Seidel { n: s(32, 64, 160) },
        "atax" | "bicg" | "gemver" | "gesummv" | "mvt" => PolyKernel::MatVec { n: s(32, 64, 192) },
        "cholesky" | "durbin" | "lu" | "ludcmp" | "trisolv" | "trmm" => {
            PolyKernel::Triangular { n: s(32, 64, 160) }
        }
        other => panic!("unknown polybench kernel {other:?}"),
    }
}

/// Generates a Polybench-like trace of at least `target` accesses.
pub fn generate(kernel: PolyKernel, target: usize) -> Trace {
    let mut b = TraceBuilder::new();
    let mut alloc = RegionAllocator::new();
    match kernel {
        PolyKernel::Matmul { n, block } => {
            kernels::blocked_matmul(&mut b, &mut alloc, n, block, target)
        }
        PolyKernel::Jacobi { n } => kernels::jacobi_2d(&mut b, &mut alloc, n, target),
        PolyKernel::Seidel { n } => kernels::seidel_2d(&mut b, &mut alloc, n, target),
        PolyKernel::MatVec { n } => kernels::atax(&mut b, &mut alloc, n, target),
        PolyKernel::Triangular { n } => kernels::triangular_sweep(&mut b, &mut alloc, n, target),
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_name_has_a_recipe() {
        for name in KERNEL_NAMES {
            for size in 0..3u8 {
                let _ = recipe_for(name, size);
            }
        }
    }

    #[test]
    fn generation_reaches_target() {
        for name in ["gemm", "jacobi-2d", "seidel-2d", "atax", "lu"] {
            let t = generate(recipe_for(name, 1), 6000);
            assert!(t.len() >= 6000, "{name}: {}", t.len());
        }
    }

    #[test]
    fn size_classes_grow_footprint() {
        let small = generate(recipe_for("gemm", 0), 20_000);
        let large = generate(recipe_for("gemm", 2), 20_000);
        assert!(
            large.footprint_blocks(6).len() > small.footprint_blocks(6).len(),
            "larger size class must touch more blocks"
        );
    }

    #[test]
    #[should_panic(expected = "unknown polybench kernel")]
    fn unknown_kernel_panics() {
        recipe_for("not-a-kernel", 0);
    }

    #[test]
    fn deterministic() {
        let a = generate(recipe_for("mvt", 1), 4000);
        let b = generate(recipe_for("mvt", 1), 4000);
        assert_eq!(a, b);
    }
}
