//! SPEC-like mixed-phase workload generator.
//!
//! Real SPEC benchmarks interleave phases with distinct locality — tight
//! loops over small state, streaming passes, and irregular pointer/hash
//! work. Each synthetic "application" here owns a deterministic profile
//! (derived from its name) selecting a locality class and a set of phase
//! kernels; each traced *phase* of the application (the `-NNNB` suffixes
//! in DPC3 trace names) perturbs the seed and phase mix.
//!
//! Locality classes are skewed toward high hit rates to reproduce the
//! dataset imbalance the paper reports in Figure 14 (over 95 % of SPEC
//! benchmarks above 65 % L1 hit rate).

use crate::kernels::{self, RegionAllocator};
use cachebox_trace::trace::TraceBuilder;
use cachebox_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Names of the SPEC CPU 2006/2017 applications this suite mimics.
pub const APP_NAMES: [&str; 26] = [
    "600.perlbench_s",
    "602.gcc_s",
    "605.mcf_s",
    "607.cactuBSSN_s",
    "619.lbm_s",
    "620.omnetpp_s",
    "623.xalancbmk_s",
    "625.x264_s",
    "628.pop2_s",
    "631.deepsjeng_s",
    "638.imagick_s",
    "641.leela_s",
    "644.nab_s",
    "648.exchange2_s",
    "649.fotonik3d_s",
    "654.roms_s",
    "657.xz_s",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "450.soplex",
    "456.hmmer",
    "462.libquantum",
    "470.lbm",
    "471.omnetpp",
    "483.xalancbmk",
];

/// Locality class of an application, controlling its typical hit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalityClass {
    /// Small working sets and strong reuse (hit rates ≳ 90 %).
    High,
    /// Mixed streaming and medium working sets (hit rates ~70–90 %).
    Medium,
    /// Large irregular footprints (hit rates below ~70 %).
    Low,
}

/// FNV-1a hash for deterministic name-derived profiles.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Returns the deterministic locality class of an application.
///
/// The assignment mirrors the real suite's memory behaviour: the
/// memory-bound applications (mcf, lbm) are low-locality, pointer-heavy
/// and compression codes are medium, and everything else is high — giving
/// the Fig. 14 skew where the large majority of benchmarks land above a
/// 65 % L1 hit rate.
pub fn locality_class(app: &str) -> LocalityClass {
    const MEDIUM: [&str; 5] = ["omnetpp", "xalancbmk", "soplex", "bzip2", "xz_s"];
    if app.contains("mcf") || app.contains("lbm") {
        LocalityClass::Low
    } else if MEDIUM.iter().any(|m| app.contains(m)) {
        LocalityClass::Medium
    } else {
        LocalityClass::High
    }
}

/// One phase-segment recipe.
#[derive(Debug, Clone, Copy)]
enum Segment {
    ZipfHot { blocks: u64, s: f64 },
    Stream { n: u64 },
    PointerChase { nodes: u64 },
    Gups { blocks: u64 },
    HashJoin { build: u64, rows: u64 },
    HotCold { hot: u64, cold: u64, p: f64 },
    Matmul { n: u64, bs: u64 },
}

fn segment_pool(class: LocalityClass, rng: &mut StdRng) -> Vec<Segment> {
    // L1 64set-12way holds 768 blocks; size footprints relative to that.
    match class {
        LocalityClass::High => vec![
            Segment::ZipfHot { blocks: rng.gen_range(96..512), s: 1.2 },
            Segment::Stream { n: rng.gen_range(128..512) },
            Segment::PointerChase { nodes: rng.gen_range(64..384) },
            Segment::Matmul { n: rng.gen_range(16..40), bs: 8 },
            Segment::HotCold { hot: rng.gen_range(32..256), cold: 4096, p: 0.97 },
        ],
        LocalityClass::Medium => vec![
            Segment::ZipfHot { blocks: rng.gen_range(1024..4096), s: 1.0 },
            Segment::Stream { n: rng.gen_range(2048..8192) },
            Segment::HashJoin { build: rng.gen_range(512..2048), rows: 8192 },
            Segment::HotCold { hot: rng.gen_range(256..512), cold: 16_384, p: 0.85 },
            Segment::Matmul { n: rng.gen_range(48..96), bs: 8 },
        ],
        LocalityClass::Low => vec![
            Segment::Gups { blocks: rng.gen_range(8192..32_768) },
            Segment::PointerChase { nodes: rng.gen_range(4096..16_384) },
            Segment::HotCold { hot: 128, cold: rng.gen_range(16_384..65_536), p: 0.4 },
            Segment::ZipfHot { blocks: rng.gen_range(8192..32_768), s: 0.6 },
        ],
    }
}

fn emit_segment(
    seg: Segment,
    b: &mut TraceBuilder,
    alloc: &mut RegionAllocator,
    rng: &mut StdRng,
    until: usize,
) {
    match seg {
        Segment::ZipfHot { blocks, s } => {
            kernels::zipf_working_set(b, alloc, rng, blocks, s, 0.25, until)
        }
        Segment::Stream { n } => kernels::stream_triad(b, alloc, n, until),
        Segment::PointerChase { nodes } => kernels::pointer_chase(b, alloc, rng, nodes, until),
        Segment::Gups { blocks } => kernels::gups(b, alloc, rng, blocks, until),
        Segment::HashJoin { build, rows } => kernels::hash_join(b, alloc, rng, build, rows, until),
        Segment::HotCold { hot, cold, p } => kernels::hot_cold(b, alloc, rng, hot, cold, p, until),
        Segment::Matmul { n, bs } => kernels::blocked_matmul(b, alloc, n, bs, until),
    }
}

/// Generates a SPEC-like trace for application `app`, traced phase
/// `phase`, with randomness rooted at `seed`.
///
/// The same `(app, phase, seed)` triple always yields the same trace.
pub fn generate(app: &str, phase: u32, seed: u64, target: usize) -> Trace {
    let class = locality_class(app);
    let profile_seed = fnv1a(app) ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = StdRng::seed_from_u64(profile_seed.wrapping_add(phase as u64));
    let pool = segment_pool(class, &mut rng);
    let n_segments = rng.gen_range(2..=4usize);
    let mut b = TraceBuilder::new();
    let mut alloc = RegionAllocator::new();
    for k in 0..n_segments {
        let seg = pool[rng.gen_range(0..pool.len())];
        let until = target * (k + 1) / n_segments;
        emit_segment(seg, &mut b, &mut alloc, &mut rng, until);
    }
    b.finish()
}

/// DPC3-style trace name for a phase, e.g. `602.gcc_s-734B`.
pub fn phase_name(app: &str, phase: u32) -> String {
    // Deterministic pseudo-offset in the style of DPC3 trace names.
    let offset = (fnv1a(app).wrapping_mul(31).wrapping_add(phase as u64 * 997)) % 9000 + 100;
    format!("{app}-{offset}B")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_reaches_target_and_is_deterministic() {
        let a = generate("602.gcc_s", 0, 42, 10_000);
        let b = generate("602.gcc_s", 0, 42, 10_000);
        assert!(a.len() >= 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn phases_of_one_app_differ() {
        let a = generate("602.gcc_s", 0, 42, 5000);
        let b = generate("602.gcc_s", 1, 42, 5000);
        assert_ne!(a, b);
    }

    #[test]
    fn apps_differ() {
        let a = generate("600.perlbench_s", 0, 42, 5000);
        let b = generate("641.leela_s", 0, 42, 5000);
        assert_ne!(a, b);
    }

    #[test]
    fn memory_bound_apps_are_low_locality() {
        assert_eq!(locality_class("605.mcf_s"), LocalityClass::Low);
        assert_eq!(locality_class("429.mcf"), LocalityClass::Low);
        assert_eq!(locality_class("470.lbm"), LocalityClass::Low);
        assert_eq!(locality_class("471.omnetpp"), LocalityClass::Medium);
    }

    #[test]
    fn class_distribution_skews_high() {
        let mut high = 0;
        for app in APP_NAMES {
            if locality_class(app) == LocalityClass::High {
                high += 1;
            }
        }
        assert!(high >= APP_NAMES.len() / 2, "only {high} high-locality apps");
    }

    #[test]
    fn low_class_has_bigger_footprint_than_high() {
        // Compare one known-low app against one high app.
        let low = generate("605.mcf_s", 0, 7, 30_000);
        let high_app = APP_NAMES
            .iter()
            .find(|a| locality_class(a) == LocalityClass::High)
            .expect("some high app");
        let high = generate(high_app, 0, 7, 30_000);
        assert!(low.footprint_blocks(6).len() > high.footprint_blocks(6).len());
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let a = phase_name("602.gcc_s", 0);
        let b = phase_name("602.gcc_s", 1);
        assert_ne!(a, b);
        assert_eq!(a, phase_name("602.gcc_s", 0));
        assert!(a.starts_with("602.gcc_s-") && a.ends_with('B'));
    }
}
