//! Evaluation metrics for CacheBox (paper §4.4, §5.7).
//!
//! * [`abs_pct_diff`] / [`average_abs_pct_diff`] — the paper's headline
//!   accuracy metric: the absolute percentage-point difference between
//!   *true* and *predicted* hit rates.
//! * [`image::ssim`] and [`image::mse`] — the structural-similarity and
//!   mean-squared-error metrics used for prefetcher heatmaps (RQ7).
//! * [`Histogram`] — fixed-bin histograms for the Fig. 14 hit-rate
//!   distribution analysis.

pub mod histogram;
pub mod image;

pub use histogram::Histogram;

use serde::{Deserialize, Serialize};

/// Absolute difference between two rates, expressed in percentage points.
///
/// The paper reports hit rates as percentages; a *true* hit rate of 0.93
/// and a *predicted* one of 0.90 differ by 3 percentage points.
///
/// # Example
///
/// ```
/// use cachebox_metrics::abs_pct_diff;
///
/// assert!((abs_pct_diff(0.93, 0.90) - 3.0).abs() < 1e-9);
/// ```
pub fn abs_pct_diff(true_rate: f64, predicted_rate: f64) -> f64 {
    (true_rate - predicted_rate).abs() * 100.0
}

/// Mean of [`abs_pct_diff`] over paired rates; `0.0` for empty input.
pub fn average_abs_pct_diff(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|&(t, p)| abs_pct_diff(t, p)).sum::<f64>() / pairs.len() as f64
}

/// A per-benchmark accuracy record, the row type of most result tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkAccuracy {
    /// Display name of the benchmark.
    pub name: String,
    /// Ground-truth hit rate in `[0, 1]`.
    pub true_rate: f64,
    /// Model-predicted hit rate in `[0, 1]`.
    pub predicted_rate: f64,
}

impl BenchmarkAccuracy {
    /// Absolute percentage-point difference for this benchmark.
    pub fn abs_pct_diff(&self) -> f64 {
        abs_pct_diff(self.true_rate, self.predicted_rate)
    }
}

/// Summary over a set of benchmark accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccuracySummary {
    /// Mean absolute percentage-point difference.
    pub average: f64,
    /// Worst-case difference.
    pub worst: f64,
    /// Best-case difference.
    pub best: f64,
    /// Number of benchmarks under 1 percentage point (the paper's black
    /// dots).
    pub under_1pct: usize,
    /// Number between 1 and 2 percentage points (the green stars).
    pub between_1_and_2pct: usize,
    /// Benchmarks summarized.
    pub count: usize,
}

impl AccuracySummary {
    /// Summarizes a slice of per-benchmark accuracies.
    pub fn from_records(records: &[BenchmarkAccuracy]) -> Self {
        if records.is_empty() {
            return AccuracySummary::default();
        }
        let diffs: Vec<f64> = records.iter().map(BenchmarkAccuracy::abs_pct_diff).collect();
        AccuracySummary {
            average: diffs.iter().sum::<f64>() / diffs.len() as f64,
            worst: diffs.iter().cloned().fold(0.0, f64::max),
            best: diffs.iter().cloned().fold(f64::INFINITY, f64::min),
            under_1pct: diffs.iter().filter(|&&d| d < 1.0).count(),
            between_1_and_2pct: diffs.iter().filter(|&&d| (1.0..2.0).contains(&d)).count(),
            count: diffs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_pct_diff_is_symmetric() {
        assert_eq!(abs_pct_diff(0.9, 0.8), abs_pct_diff(0.8, 0.9));
        assert!((abs_pct_diff(0.9, 0.8) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn average_over_empty_is_zero() {
        assert_eq!(average_abs_pct_diff(&[]), 0.0);
    }

    #[test]
    fn average_is_mean_of_diffs() {
        let avg = average_abs_pct_diff(&[(0.9, 0.88), (0.5, 0.54)]);
        assert!((avg - 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_buckets() {
        let records = vec![
            BenchmarkAccuracy { name: "a".into(), true_rate: 0.90, predicted_rate: 0.905 }, // 0.5
            BenchmarkAccuracy { name: "b".into(), true_rate: 0.90, predicted_rate: 0.915 }, // 1.5
            BenchmarkAccuracy { name: "c".into(), true_rate: 0.90, predicted_rate: 0.95 },  // 5.0
        ];
        let s = AccuracySummary::from_records(&records);
        assert_eq!(s.count, 3);
        assert_eq!(s.under_1pct, 1);
        assert_eq!(s.between_1_and_2pct, 1);
        assert!((s.worst - 5.0).abs() < 1e-9);
        assert!((s.best - 0.5).abs() < 1e-9);
        assert!((s.average - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(AccuracySummary::from_records(&[]), AccuracySummary::default());
    }
}
