//! Fixed-bin histograms (Fig. 14).

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins; values outside the
/// range clamp into the first/last bin.
///
/// # Example
///
/// ```
/// use cachebox_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 10);
/// h.record(0.95);
/// h.record(0.97);
/// h.record(0.30);
/// assert_eq!(h.count(9), 2);
/// assert_eq!(h.total(), 3);
/// assert!((h.fraction_at_or_above(0.9) - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        Histogram { lo, hi, bins: vec![0; bins] }
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        let idx = self.bin_of(value);
        self.bins[idx] += 1;
    }

    /// Index of the bin a value falls into (clamped).
    pub fn bin_of(&self, value: f64) -> usize {
        let frac = (value - self.lo) / (self.hi - self.lo);
        ((frac * self.bins.len() as f64).floor() as isize).clamp(0, self.bins.len() as isize - 1)
            as usize
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn count(&self, idx: usize) -> u64 {
        self.bins[idx]
    }

    /// All bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// The `[lo, hi)` edges of bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + idx as f64 * width, self.lo + (idx + 1) as f64 * width)
    }

    /// Fraction of recorded values at or above `threshold` (by bin lower
    /// edge).
    pub fn fraction_at_or_above(&self, threshold: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = (0..self.bins.len())
            .filter(|&i| self.bin_range(i).0 >= threshold - 1e-12)
            .map(|i| self.bins[i])
            .sum();
        sum as f64 / total as f64
    }

    /// Renders an ASCII bar chart (for experiment binaries).
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar = "#".repeat((count as usize * width).div_ceil(max as usize));
            out.push_str(&format!("[{lo:6.2}, {hi:6.2}) {count:6} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(0.1); // bin 0
        h.record(0.30); // bin 1
        h.record(0.99); // bin 3
        assert_eq!(h.counts(), &[1, 1, 0, 1]);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-5.0);
        h.record(7.0);
        h.record(1.0); // exactly hi clamps into last bin
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(0.0, 100.0, 5);
        assert_eq!(h.bin_range(0), (0.0, 20.0));
        assert_eq!(h.bin_range(4), (80.0, 100.0));
    }

    #[test]
    fn fraction_threshold() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for v in [0.05, 0.55, 0.65, 0.75, 0.95] {
            h.record(v);
        }
        assert!((h.fraction_at_or_above(0.6) - 3.0 / 5.0).abs() < 1e-9);
        assert_eq!(Histogram::new(0.0, 1.0, 2).fraction_at_or_above(0.0), 0.0);
    }

    #[test]
    fn render_produces_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.record(0.5);
        let text = h.render(10);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains('#'));
    }
}
