//! Image-space metrics: MSE and SSIM (paper §5.7).

use cachebox_heatmap::Heatmap;

/// Mean squared error between two heatmaps.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(a: &Heatmap, b: &Heatmap) -> f64 {
    a.mse(b)
}

/// Structural similarity (SSIM) between two heatmaps, computed globally
/// with the standard constants (`k₁ = 0.01`, `k₂ = 0.03`) over a dynamic
/// range inferred from the data.
///
/// Returns a value in `[-1, 1]`; identical images score 1.
///
/// # Panics
///
/// Panics on shape mismatch.
///
/// # Example
///
/// ```
/// use cachebox_heatmap::Heatmap;
/// use cachebox_metrics::image::ssim;
///
/// let a = Heatmap::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
/// assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
/// ```
pub fn ssim(a: &Heatmap, b: &Heatmap) -> f64 {
    assert_eq!((a.height(), a.width()), (b.height(), b.width()), "heatmap shape mismatch");
    let n = (a.height() * a.width()) as f64;
    let mean = |h: &Heatmap| h.pixel_sum() / n;
    let (mu_a, mu_b) = (mean(a), mean(b));
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let (dx, dy) = (x as f64 - mu_a, y as f64 - mu_b);
        var_a += dx * dx;
        var_b += dy * dy;
        cov += dx * dy;
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    // Dynamic range: max observed value across both images (at least 1).
    let range = a.max_pixel().max(b.max_pixel()).max(1.0) as f64;
    let c1 = (0.01 * range).powi(2);
    let c2 = (0.03 * range).powi(2);
    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

/// Windowed SSIM: mean of [`ssim`] over non-overlapping `window`-sized
/// tiles, the common local formulation. Partial edge tiles are included.
///
/// # Panics
///
/// Panics on shape mismatch or a zero window.
pub fn ssim_windowed(a: &Heatmap, b: &Heatmap, window: usize) -> f64 {
    assert!(window > 0, "window must be non-zero");
    assert_eq!((a.height(), a.width()), (b.height(), b.width()), "heatmap shape mismatch");
    let mut total = 0.0;
    let mut tiles = 0usize;
    let mut row = 0;
    while row < a.height() {
        let rh = window.min(a.height() - row);
        let mut col = 0;
        while col < a.width() {
            let cw = window.min(a.width() - col);
            let tile = |h: &Heatmap| {
                let mut data = Vec::with_capacity(rh * cw);
                for r in row..row + rh {
                    for c in col..col + cw {
                        data.push(h.get(r, c));
                    }
                }
                Heatmap::from_vec(rh, cw, data)
            };
            total += ssim(&tile(a), &tile(b));
            tiles += 1;
            col += window;
        }
        row += window;
    }
    total / tiles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(h: usize, w: usize, offset: f32) -> Heatmap {
        Heatmap::from_vec(h, w, (0..h * w).map(|i| (i % 5) as f32 + offset).collect())
    }

    #[test]
    fn identical_images_score_one() {
        let a = ramp(8, 8, 0.0);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-9);
        assert!((ssim_windowed(&a, &a, 4) - 1.0).abs() < 1e-9);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn dissimilar_images_score_lower() {
        let a = ramp(8, 8, 0.0);
        let zero = Heatmap::zeros(8, 8);
        let inverted = a.map(|v| 4.0 - v);
        assert!(ssim(&a, &zero) < 0.9);
        assert!(ssim(&a, &inverted) < ssim(&a, &a));
    }

    #[test]
    fn ssim_orders_by_similarity() {
        let a = ramp(8, 8, 0.0);
        let slightly_off = a.map(|v| v + 0.1);
        let very_off = a.map(|v| v * 3.0 + 2.0);
        assert!(ssim(&a, &slightly_off) > ssim(&a, &very_off));
    }

    #[test]
    fn ssim_in_valid_range() {
        let a = ramp(6, 6, 0.0);
        let b = ramp(6, 6, 2.5);
        let s = ssim(&a, &b);
        assert!((-1.0..=1.0).contains(&s), "ssim {s}");
    }

    #[test]
    fn windowed_handles_partial_tiles() {
        let a = ramp(5, 7, 0.0);
        let s = ssim_windowed(&a, &a, 4);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn ssim_validates_shape() {
        ssim(&Heatmap::zeros(2, 2), &Heatmap::zeros(2, 3));
    }
}
