//! Rendering traces into heatmap sequences.

use crate::geometry::HeatmapGeometry;
use crate::image::Heatmap;
use cachebox_trace::Trace;
use serde::{Deserialize, Serialize};

/// What one heatmap column bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TimeAxis {
    /// Columns bin consecutive *accesses* (Fig. 3's "100 accesses per
    /// column"). Pixel sums then equal access counts exactly, which is
    /// what the hit-rate arithmetic of §4.4 relies on.
    #[default]
    Accesses,
    /// Columns bin *instruction* slots (§3.1's description). Required when
    /// aligning two different streams — e.g. demand accesses and prefetch
    /// addresses in RQ7 — on a common timeline.
    Instructions,
}

/// A paired access/miss heatmap covering the same time span — one CB-GAN
/// training (or evaluation) sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapPair {
    /// Accesses entering the cache.
    pub access: Heatmap,
    /// Accesses that missed.
    pub miss: Heatmap,
    /// Index of this pair within its sequence (0 = first, no overlap).
    pub index: usize,
}

/// Renders traces into sequences of overlapping heatmaps.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatmapBuilder {
    geometry: HeatmapGeometry,
    axis: TimeAxis,
}

impl HeatmapBuilder {
    /// Creates a builder binning by [`TimeAxis::Accesses`].
    pub fn new(geometry: HeatmapGeometry) -> Self {
        HeatmapBuilder { geometry, axis: TimeAxis::default() }
    }

    /// Returns a copy binning by the given axis.
    pub fn with_axis(mut self, axis: TimeAxis) -> Self {
        self.axis = axis;
        self
    }

    /// The builder's geometry.
    pub fn geometry(&self) -> &HeatmapGeometry {
        &self.geometry
    }

    /// Time unit of access `i` of `trace` under the configured axis.
    fn unit(&self, trace: &Trace, i: usize) -> u64 {
        match self.axis {
            TimeAxis::Accesses => i as u64,
            TimeAxis::Instructions => {
                let first = trace.accesses().first().map_or(0, |a| a.instr);
                trace[i].instr - first
            }
        }
    }

    /// Total time units spanned by the trace.
    fn total_units(&self, trace: &Trace) -> u64 {
        match self.axis {
            TimeAxis::Accesses => trace.len() as u64,
            TimeAxis::Instructions => trace.instruction_count(),
        }
    }

    /// Renders the whole trace into its overlapping heatmap sequence.
    pub fn build(&self, trace: &Trace) -> Vec<Heatmap> {
        let units = self.total_units(trace);
        let count = self.geometry.heatmap_count(units);
        let mut maps = vec![Heatmap::zeros(self.geometry.height, self.geometry.width); count];
        for i in 0..trace.len() {
            let u = self.unit(trace, i);
            let row = self.geometry.projection.row(trace[i].address, self.geometry.height);
            self.splat(&mut maps, u, row, 1.0);
        }
        maps
    }

    /// Renders access/miss heatmap pairs from a trace plus per-access hit
    /// flags (as produced by `cachebox-sim`). Both images share the time
    /// axis of the *access* stream, so a miss is rendered at the same
    /// column as the access that caused it.
    ///
    /// # Panics
    ///
    /// Panics if `hit_flags.len() != trace.len()`.
    pub fn build_pairs(&self, trace: &Trace, hit_flags: &[bool]) -> Vec<HeatmapPair> {
        assert_eq!(trace.len(), hit_flags.len(), "trace/hit-flag length mismatch");
        let units = self.total_units(trace);
        let count = self.geometry.heatmap_count(units);
        let mut access = vec![Heatmap::zeros(self.geometry.height, self.geometry.width); count];
        let mut miss = access.clone();
        for i in 0..trace.len() {
            let u = self.unit(trace, i);
            let row = self.geometry.projection.row(trace[i].address, self.geometry.height);
            self.splat(&mut access, u, row, 1.0);
            if !hit_flags[i] {
                self.splat(&mut miss, u, row, 1.0);
            }
        }
        access
            .into_iter()
            .zip(miss)
            .enumerate()
            .map(|(index, (access, miss))| HeatmapPair { access, miss, index })
            .collect()
    }

    /// Renders two *different* streams onto the primary stream's
    /// timeline — e.g. demand accesses and the prefetches they trigger
    /// (RQ7). Requires [`TimeAxis::Instructions`], since the secondary
    /// stream's events are positioned by instruction stamp.
    ///
    /// Secondary events outside the primary's instruction span are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if the builder's axis is [`TimeAxis::Accesses`].
    pub fn build_aligned(&self, primary: &Trace, secondary: &Trace) -> Vec<(Heatmap, Heatmap)> {
        assert_eq!(
            self.axis,
            TimeAxis::Instructions,
            "aligning two streams requires the instruction time axis"
        );
        let units = self.total_units(primary);
        let count = self.geometry.heatmap_count(units);
        let mut first_maps = vec![Heatmap::zeros(self.geometry.height, self.geometry.width); count];
        let mut second_maps = first_maps.clone();
        let first_instr = primary.accesses().first().map_or(0, |a| a.instr);
        for a in primary {
            let u = a.instr - first_instr;
            let row = self.geometry.projection.row(a.address, self.geometry.height);
            self.splat(&mut first_maps, u, row, 1.0);
        }
        for a in secondary {
            if a.instr < first_instr {
                continue;
            }
            let u = a.instr - first_instr;
            if u >= units {
                continue;
            }
            let row = self.geometry.projection.row(a.address, self.geometry.height);
            self.splat(&mut second_maps, u, row, 1.0);
        }
        first_maps.into_iter().zip(second_maps).collect()
    }

    /// Adds `value` at time unit `u`, row `row`, in every heatmap whose
    /// span covers `u` (overlapping maps each get a copy).
    fn splat(&self, maps: &mut [Heatmap], u: u64, row: usize, value: f32) {
        if maps.is_empty() {
            return;
        }
        let stride_units = self.geometry.stride_windows() as u64 * self.geometry.window;
        let span = self.geometry.units_per_heatmap();
        let k_hi = ((u / stride_units) as usize).min(maps.len() - 1);
        // Lowest k with k*stride + span > u  ⇔  k > (u - span) / stride.
        let k_lo = if u < span { 0 } else { ((u - span) / stride_units + 1) as usize };
        #[allow(clippy::needless_range_loop)] // k is the heatmap index, used in arithmetic
        for k in k_lo..=k_hi {
            let start = k as u64 * stride_units;
            debug_assert!(u >= start && u < start + span);
            let col = ((u - start) / self.geometry.window) as usize;
            maps[k].add(row, col, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::{Address, MemoryAccess};

    fn seq_trace(len: u64) -> Trace {
        (0..len).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect()
    }

    #[test]
    fn single_heatmap_when_trace_fits() {
        let g = HeatmapGeometry::new(8, 4, 4); // 16 accesses per map
        let maps = HeatmapBuilder::new(g).build(&seq_trace(16));
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].pixel_sum(), 16.0);
    }

    #[test]
    fn rows_follow_block_modulo() {
        let g = HeatmapGeometry::new(8, 4, 4);
        // Blocks 0..16 → rows 0..8 wrap twice.
        let maps = HeatmapBuilder::new(g).build(&seq_trace(16));
        // Access i has block i, row i % 8, column i / 4.
        for i in 0..16usize {
            assert!(maps[0].get(i % 8, i / 4) >= 1.0, "access {i} missing");
        }
    }

    #[test]
    fn overlap_duplicates_shared_region() {
        // width 10, window 1, overlap 0.3 => overlap 3 cols, stride 7.
        let g = HeatmapGeometry::new(4, 10, 1).with_overlap(0.3);
        let maps = HeatmapBuilder::new(g).build(&seq_trace(17));
        assert_eq!(maps.len(), 2);
        // Units 7..10 appear in map0 cols 7..10 and map1 cols 0..3.
        for u in 7..10usize {
            let row = u % 4;
            assert_eq!(maps[0].get(row, u), 1.0);
            assert_eq!(maps[1].get(row, u - 7), 1.0);
        }
        // Total pixels = 17 + 3 duplicated.
        let total: f64 = maps.iter().map(|m| m.pixel_sum()).sum();
        assert_eq!(total, 20.0);
    }

    #[test]
    fn pairs_share_columns_and_miss_subset() {
        let g = HeatmapGeometry::new(4, 4, 2);
        let trace = seq_trace(8);
        let hits = vec![false, true, false, true, false, true, false, true];
        let pairs = HeatmapBuilder::new(g).build_pairs(&trace, &hits);
        assert_eq!(pairs.len(), 1);
        let p = &pairs[0];
        assert_eq!(p.access.pixel_sum(), 8.0);
        assert_eq!(p.miss.pixel_sum(), 4.0);
        // Miss pixels are a subset of access pixels.
        for (a, m) in p.access.data().iter().zip(p.miss.data()) {
            assert!(m <= a);
        }
    }

    #[test]
    fn instruction_axis_uses_stamps() {
        let g = HeatmapGeometry::new(4, 4, 10); // 40 instr per map
        let trace: Trace = vec![
            MemoryAccess::load(0, Address::new(0)),
            MemoryAccess::load(15, Address::new(64)),
            MemoryAccess::load(39, Address::new(128)),
        ]
        .into();
        let maps = HeatmapBuilder::new(g).with_axis(TimeAxis::Instructions).build(&trace);
        assert_eq!(maps.len(), 1);
        assert_eq!(maps[0].get(0, 0), 1.0);
        assert_eq!(maps[0].get(1, 1), 1.0);
        assert_eq!(maps[0].get(2, 3), 1.0);
    }

    #[test]
    fn aligned_streams_share_windows() {
        let g = HeatmapGeometry::new(4, 4, 10);
        let primary: Trace = (0..40u64)
            .filter(|i| i % 2 == 0)
            .map(|i| MemoryAccess::load(i, Address::new(0)))
            .collect();
        let secondary: Trace = vec![
            MemoryAccess::load(5, Address::new(64)),
            MemoryAccess::load(35, Address::new(64)),
            MemoryAccess::load(99, Address::new(64)), // out of range: dropped
        ]
        .into();
        let pairs = HeatmapBuilder::new(g)
            .with_axis(TimeAxis::Instructions)
            .build_aligned(&primary, &secondary);
        assert_eq!(pairs.len(), 1);
        let (p, s) = &pairs[0];
        assert_eq!(p.pixel_sum(), 20.0);
        assert_eq!(s.pixel_sum(), 2.0);
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(1, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "instruction time axis")]
    fn aligned_requires_instruction_axis() {
        let g = HeatmapGeometry::new(4, 4, 10);
        HeatmapBuilder::new(g).build_aligned(&seq_trace(4), &seq_trace(4));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pairs_validate_flag_length() {
        let g = HeatmapGeometry::new(4, 4, 10);
        HeatmapBuilder::new(g).build_pairs(&seq_trace(4), &[true]);
    }

    #[test]
    fn empty_trace_builds_nothing() {
        let g = HeatmapGeometry::new(4, 4, 10);
        assert!(HeatmapBuilder::new(g).build(&Trace::new()).is_empty());
    }
}
