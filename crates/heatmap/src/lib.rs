//! Heatmap representation of memory access traces (paper §3.1).
//!
//! A heatmap projects a trace onto a fixed-size 2D image: the **y-axis**
//! is a modulo mapping of the address space and the **x-axis** is time,
//! binned into fixed-size windows. Each pixel counts the accesses to that
//! modulo-address during that window, so the sum of all pixels equals the
//! number of accesses rendered — the property the paper exploits to
//! recover hit rates from generated miss heatmaps (§4.4).
//!
//! Long traces are split into a sequence of heatmaps with a configurable
//! **overlap** (30 % in the paper) acting as per-image warmup context
//! (§3.1.1); [`hitrate`] de-duplicates the overlap when aggregating.
//!
//! # Example
//!
//! ```
//! use cachebox_heatmap::{HeatmapBuilder, HeatmapGeometry};
//! use cachebox_trace::{Address, MemoryAccess, Trace};
//!
//! let geometry = HeatmapGeometry::new(16, 16, 4);
//! let trace: Trace = (0..1024u64)
//!     .map(|i| MemoryAccess::load(i, Address::new((i % 16) * 64)))
//!     .collect();
//! let maps = HeatmapBuilder::new(geometry).build(&trace);
//! assert!(!maps.is_empty());
//! // Every access lands in exactly one pixel of one (deduplicated) map.
//! let total: f64 = cachebox_heatmap::hitrate::dedup_pixel_sum(&maps, &geometry);
//! assert_eq!(total as usize, trace.len());
//! ```

pub mod builder;
pub mod export;
pub mod geometry;
pub mod hitrate;
pub mod image;

pub use builder::{HeatmapBuilder, HeatmapPair, TimeAxis};
pub use geometry::{AddressProjection, HeatmapGeometry};
pub use image::Heatmap;
