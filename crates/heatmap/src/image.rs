//! The [`Heatmap`] pixel buffer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `height × width` image of non-negative access counts,
/// stored row-major in `f32`.
///
/// # Example
///
/// ```
/// use cachebox_heatmap::Heatmap;
///
/// let mut h = Heatmap::zeros(4, 4);
/// h.add(1, 2, 3.0);
/// assert_eq!(h.get(1, 2), 3.0);
/// assert_eq!(h.pixel_sum(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl Heatmap {
    /// Creates an all-zero heatmap.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(height: usize, width: usize) -> Self {
        assert!(height > 0 && width > 0, "heatmap dimensions must be non-zero");
        Heatmap { height, width, data: vec![0.0; height * width] }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != height * width` or a dimension is zero.
    pub fn from_vec(height: usize, width: usize, data: Vec<f32>) -> Self {
        assert!(height > 0 && width > 0, "heatmap dimensions must be non-zero");
        assert_eq!(data.len(), height * width, "buffer length mismatch");
        Heatmap { height, width, data }
    }

    /// Image height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Image width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the heatmap, returning the buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Pixel value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.data[row * self.width + col]
    }

    /// Sets the pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.data[row * self.width + col] = value;
    }

    /// Adds `delta` to the pixel at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn add(&mut self, row: usize, col: usize, delta: f32) {
        assert!(row < self.height && col < self.width, "pixel out of bounds");
        self.data[row * self.width + col] += delta;
    }

    /// Sum of all pixels — the access (or miss) count the image encodes.
    pub fn pixel_sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Sum of the pixels in columns `[from_col, to_col)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the width or is inverted.
    pub fn column_range_sum(&self, from_col: usize, to_col: usize) -> f64 {
        assert!(from_col <= to_col && to_col <= self.width, "invalid column range");
        let mut sum = 0.0;
        for row in 0..self.height {
            let base = row * self.width;
            for col in from_col..to_col {
                sum += self.data[base + col] as f64;
            }
        }
        sum
    }

    /// Largest pixel value (0.0 for the all-zero map).
    pub fn max_pixel(&self) -> f32 {
        self.data.iter().copied().fold(0.0, f32::max)
    }

    /// Returns a new heatmap with every pixel transformed by `f`.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Heatmap {
        Heatmap {
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Clamps every pixel to be non-negative (useful after generation,
    /// since a GAN may emit small negative values).
    pub fn relu(&self) -> Heatmap {
        self.map(|v| v.max(0.0))
    }

    /// Element-wise minimum with `ceiling`.
    ///
    /// A cache's miss heatmap is physically a sub-image of its access
    /// heatmap (a pixel cannot miss more times than it was accessed), so
    /// generated miss maps are clamped to the access map before hit-rate
    /// recovery.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn clamp_to(&self, ceiling: &Heatmap) -> Heatmap {
        assert_eq!(
            (self.height, self.width),
            (ceiling.height, ceiling.width),
            "heatmap shape mismatch"
        );
        Heatmap {
            height: self.height,
            width: self.width,
            data: self.data.iter().zip(&ceiling.data).map(|(&a, &c)| a.min(c)).collect(),
        }
    }

    /// Mean squared error against another heatmap of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mse(&self, other: &Heatmap) -> f64 {
        assert_eq!(
            (self.height, self.width),
            (other.height, other.width),
            "heatmap shape mismatch"
        );
        let n = self.data.len() as f64;
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            / n
    }
}

impl fmt::Display for Heatmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Heatmap {}x{} (sum={:.0}, max={:.0})",
            self.height,
            self.width,
            self.pixel_sum(),
            self.max_pixel()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_sums() {
        let h = Heatmap::zeros(3, 5);
        assert_eq!(h.pixel_sum(), 0.0);
        assert_eq!(h.height(), 3);
        assert_eq!(h.width(), 5);
    }

    #[test]
    fn get_set_add() {
        let mut h = Heatmap::zeros(2, 2);
        h.set(0, 1, 2.0);
        h.add(0, 1, 0.5);
        assert_eq!(h.get(0, 1), 2.5);
        assert_eq!(h.pixel_sum(), 2.5);
    }

    #[test]
    fn column_range_sum_slices_correctly() {
        let mut h = Heatmap::zeros(2, 4);
        for col in 0..4 {
            h.set(0, col, 1.0);
            h.set(1, col, 2.0);
        }
        assert_eq!(h.column_range_sum(0, 4), 12.0);
        assert_eq!(h.column_range_sum(1, 3), 6.0);
        assert_eq!(h.column_range_sum(2, 2), 0.0);
    }

    #[test]
    fn map_and_relu() {
        let h = Heatmap::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        assert_eq!(h.relu().data(), &[0.0, 0.0, 2.0]);
        assert_eq!(h.map(|v| v * 2.0).data(), &[-2.0, 0.0, 4.0]);
    }

    #[test]
    fn clamp_to_takes_elementwise_min() {
        let miss = Heatmap::from_vec(1, 3, vec![5.0, 0.5, 2.0]);
        let access = Heatmap::from_vec(1, 3, vec![3.0, 1.0, 2.0]);
        assert_eq!(miss.clamp_to(&access).data(), &[3.0, 0.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn clamp_to_validates_shape() {
        Heatmap::zeros(1, 2).clamp_to(&Heatmap::zeros(2, 1));
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let h = Heatmap::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.mse(&h), 0.0);
        let z = Heatmap::zeros(2, 2);
        assert!((h.mse(&z) - (1.0 + 4.0 + 9.0 + 16.0) / 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        Heatmap::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_validates() {
        Heatmap::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mse_validates_shape() {
        Heatmap::zeros(2, 2).mse(&Heatmap::zeros(2, 3));
    }
}
