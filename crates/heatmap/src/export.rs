//! Heatmap export: PGM images and CSV matrices.

use crate::image::Heatmap;
use std::io::Write;

/// Writes the heatmap as a binary 8-bit PGM (P5) image, scaling pixels so
/// the maximum maps to 255. All-zero maps export as all-black.
///
/// A `&mut` writer may be passed since `Write` is implemented for mutable
/// references.
///
/// # Errors
///
/// Returns any I/O error from the writer.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cachebox_heatmap::{Heatmap, export::write_pgm};
///
/// let h = Heatmap::from_vec(1, 2, vec![0.0, 4.0]);
/// let mut buf = Vec::new();
/// write_pgm(&mut buf, &h)?;
/// assert!(buf.starts_with(b"P5\n2 1\n255\n"));
/// assert_eq!(&buf[buf.len() - 2..], &[0u8, 255]);
/// # Ok(())
/// # }
/// ```
pub fn write_pgm<W: Write>(mut writer: W, heatmap: &Heatmap) -> std::io::Result<()> {
    let max = heatmap.max_pixel().max(1e-12);
    write!(writer, "P5\n{} {}\n255\n", heatmap.width(), heatmap.height())?;
    let bytes: Vec<u8> = heatmap
        .data()
        .iter()
        .map(|&v| ((v.max(0.0) / max) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect();
    writer.write_all(&bytes)
}

/// Writes the heatmap as CSV, one row per line.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_csv<W: Write>(mut writer: W, heatmap: &Heatmap) -> std::io::Result<()> {
    for row in 0..heatmap.height() {
        let line: Vec<String> =
            (0..heatmap.width()).map(|col| format!("{}", heatmap.get(row, col))).collect();
        writeln!(writer, "{}", line.join(","))?;
    }
    Ok(())
}

/// Reads a CSV matrix previously written by [`write_csv`].
///
/// # Errors
///
/// Returns a description of the first malformed cell or an inconsistent
/// row width.
pub fn read_csv(text: &str) -> Result<Heatmap, String> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f32>, _> = line.split(',').map(|c| c.trim().parse::<f32>()).collect();
        let row = row.map_err(|e| format!("line {}: {e}", i + 1))?;
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(format!("line {}: inconsistent width", i + 1));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("empty csv".to_string());
    }
    let height = rows.len();
    let width = rows[0].len();
    Ok(Heatmap::from_vec(height, width, rows.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_header_and_scaling() {
        let h = Heatmap::from_vec(2, 2, vec![0.0, 1.0, 2.0, 4.0]);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &h).unwrap();
        let header_end = buf.windows(4).position(|w| w == b"255\n").unwrap() + 4;
        assert_eq!(&buf[header_end..], &[0, 64, 128, 255]);
    }

    #[test]
    fn pgm_all_zero_is_black() {
        let mut buf = Vec::new();
        write_pgm(&mut buf, &Heatmap::zeros(1, 3)).unwrap();
        assert_eq!(&buf[buf.len() - 3..], &[0, 0, 0]);
    }

    #[test]
    fn csv_roundtrip() {
        let h = Heatmap::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.5, 6.0]);
        let mut buf = Vec::new();
        write_csv(&mut buf, &h).unwrap();
        let parsed = read_csv(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        assert!(read_csv("1,2\n3\n").is_err());
        assert!(read_csv("").is_err());
        assert!(read_csv("1,x\n").is_err());
    }
}
