//! Heatmap geometry: image size, window size, overlap, address mapping.

use serde::{Deserialize, Serialize};

/// How addresses project onto heatmap rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressProjection {
    /// `row = byte_address % height` (the paper's literal description).
    Byte,
    /// `row = (address >> offset_bits) % height` — cache-block granular,
    /// so each row is one block-aliasing class. The default, since cache
    /// behaviour is block-granular.
    Block(u32),
}

impl Default for AddressProjection {
    fn default() -> Self {
        AddressProjection::Block(6)
    }
}

impl AddressProjection {
    /// Projects an address onto `[0, height)`.
    pub fn row(&self, address: cachebox_trace::Address, height: usize) -> usize {
        let raw = match self {
            AddressProjection::Byte => address.as_u64(),
            AddressProjection::Block(bits) => address.block(*bits),
        };
        (raw % height as u64) as usize
    }
}

/// Geometry of a heatmap sequence.
///
/// The paper fixes 512×512 images with 100-instruction windows and 30 %
/// overlap; this type makes every knob a value so tests can run at 16×16
/// while experiments use larger images.
///
/// # Example
///
/// ```
/// use cachebox_heatmap::HeatmapGeometry;
///
/// let g = HeatmapGeometry::paper();
/// assert_eq!((g.height, g.width, g.window), (512, 512, 100));
/// assert_eq!(g.overlap_windows(), 154); // ~30% of 512 columns
/// assert_eq!(g.stride_windows(), 512 - 154);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatmapGeometry {
    /// Image height: the address-modulo size.
    pub height: usize,
    /// Image width: number of time windows per heatmap.
    pub width: usize,
    /// Time units (accesses or instructions) per window/column.
    pub window: u64,
    /// Fraction of each heatmap duplicated from its predecessor.
    pub overlap_frac: f64,
    /// Address-to-row projection.
    pub projection: AddressProjection,
}

impl HeatmapGeometry {
    /// Creates a geometry with the paper's 30 % overlap and block-granular
    /// address projection.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(height: usize, width: usize, window: u64) -> Self {
        assert!(height > 0 && width > 0 && window > 0, "geometry dimensions must be non-zero");
        HeatmapGeometry {
            height,
            width,
            window,
            overlap_frac: 0.3,
            projection: AddressProjection::default(),
        }
    }

    /// The paper's full-scale geometry: 512×512, 100-unit windows, 30 %
    /// overlap.
    pub fn paper() -> Self {
        Self::new(512, 512, 100)
    }

    /// A scaled-down geometry suited to CPU-only experiments: 64×64 with
    /// 32-access windows.
    pub fn experiment_default() -> Self {
        Self::new(64, 64, 32)
    }

    /// Returns a copy with a different overlap fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= overlap_frac < 1.0`.
    pub fn with_overlap(mut self, overlap_frac: f64) -> Self {
        assert!((0.0..1.0).contains(&overlap_frac), "overlap must be in [0, 1)");
        self.overlap_frac = overlap_frac;
        self
    }

    /// Returns a copy with a different address projection.
    pub fn with_projection(mut self, projection: AddressProjection) -> Self {
        self.projection = projection;
        self
    }

    /// Number of leading columns duplicated from the previous heatmap.
    pub fn overlap_windows(&self) -> usize {
        ((self.width as f64 * self.overlap_frac).round() as usize).min(self.width - 1)
    }

    /// Columns of fresh (non-duplicated) content per heatmap — the step
    /// between consecutive heatmap origins.
    pub fn stride_windows(&self) -> usize {
        self.width - self.overlap_windows()
    }

    /// Time units covered by one full heatmap.
    pub fn units_per_heatmap(&self) -> u64 {
        self.width as u64 * self.window
    }

    /// Number of heatmaps generated for `units` time units.
    ///
    /// The first heatmap covers `units_per_heatmap()`; each subsequent one
    /// adds `stride_windows() * window` fresh units. A trailing partial
    /// heatmap is produced for any remainder.
    pub fn heatmap_count(&self, units: u64) -> usize {
        if units == 0 {
            return 0;
        }
        let first = self.units_per_heatmap();
        if units <= first {
            return 1;
        }
        let stride_units = self.stride_windows() as u64 * self.window;
        (1 + (units - first).div_ceil(stride_units)) as usize
    }

    /// Pixels per heatmap.
    pub fn pixels(&self) -> usize {
        self.height * self.width
    }
}

impl Default for HeatmapGeometry {
    fn default() -> Self {
        Self::experiment_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::Address;

    #[test]
    fn paper_geometry_overlap() {
        let g = HeatmapGeometry::paper();
        assert_eq!(g.overlap_windows(), 154_usize.min((512.0_f64 * 0.3).round() as usize));
        assert_eq!(g.units_per_heatmap(), 51_200);
        assert_eq!(g.pixels(), 512 * 512);
    }

    #[test]
    fn zero_overlap() {
        let g = HeatmapGeometry::new(8, 10, 5).with_overlap(0.0);
        assert_eq!(g.overlap_windows(), 0);
        assert_eq!(g.stride_windows(), 10);
    }

    #[test]
    fn overlap_never_consumes_whole_width() {
        let g = HeatmapGeometry::new(8, 4, 5).with_overlap(0.99);
        assert!(g.overlap_windows() < g.width);
        assert!(g.stride_windows() >= 1);
    }

    #[test]
    fn heatmap_count_boundaries() {
        let g = HeatmapGeometry::new(8, 10, 10).with_overlap(0.3); // 100 units/map, stride 70
        assert_eq!(g.heatmap_count(0), 0);
        assert_eq!(g.heatmap_count(1), 1);
        assert_eq!(g.heatmap_count(100), 1);
        assert_eq!(g.heatmap_count(101), 2);
        assert_eq!(g.heatmap_count(170), 2);
        assert_eq!(g.heatmap_count(171), 3);
    }

    #[test]
    fn projections() {
        let a = Address::new(0x1234);
        assert_eq!(AddressProjection::Byte.row(a, 512), (0x1234 % 512) as usize);
        assert_eq!(AddressProjection::Block(6).row(a, 512), (0x1234 >> 6) as usize);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_height() {
        HeatmapGeometry::new(0, 4, 4);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_full_overlap() {
        HeatmapGeometry::new(4, 4, 4).with_overlap(1.0);
    }
}
