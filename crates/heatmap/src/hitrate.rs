//! Hit-rate computation with overlap de-duplication (paper §4.4).
//!
//! The sum of a miss heatmap's pixels is the miss count in its window;
//! the sum of the paired access heatmap's pixels is the access count.
//! Because consecutive heatmaps share a 30 % overlap, the shared columns
//! must be counted once: the first heatmap contributes all of its
//! columns, every later heatmap only its fresh columns
//! (`overlap_windows()..width`).

use crate::builder::HeatmapPair;
use crate::geometry::HeatmapGeometry;
use crate::image::Heatmap;

/// Sum of pixels over a heatmap sequence with overlap regions counted
/// exactly once.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn dedup_pixel_sum(maps: &[Heatmap], geometry: &HeatmapGeometry) -> f64 {
    let overlap = geometry.overlap_windows();
    maps.iter()
        .enumerate()
        .map(|(k, m)| {
            let from = if k == 0 { 0 } else { overlap };
            m.column_range_sum(from, m.width())
        })
        .sum()
}

/// Total accesses, misses, and the hit rate recovered from a sequence of
/// access/miss heatmap pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HitRateSummary {
    /// De-duplicated access count.
    pub accesses: f64,
    /// De-duplicated miss count.
    pub misses: f64,
}

impl HitRateSummary {
    /// Hit rate in `[0, 1]`; 0.0 when there are no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses <= 0.0 {
            0.0
        } else {
            // Generated miss maps may slightly overshoot the access count;
            // clamp so the rate stays in range.
            (1.0 - self.misses / self.accesses).clamp(0.0, 1.0)
        }
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses <= 0.0 {
            0.0
        } else {
            (self.misses / self.accesses).clamp(0.0, 1.0)
        }
    }
}

/// Computes the hit rate from paired access/miss heatmaps.
pub fn hit_rate_from_pairs(pairs: &[HeatmapPair], geometry: &HeatmapGeometry) -> HitRateSummary {
    let access: Vec<Heatmap> = pairs.iter().map(|p| p.access.clone()).collect();
    let miss: Vec<Heatmap> = pairs.iter().map(|p| p.miss.clone()).collect();
    hit_rate_from_sequences(&access, &miss, geometry)
}

/// Computes the hit rate from separate access and (possibly synthetic)
/// miss heatmap sequences.
///
/// Synthetic miss maps are rectified (negative pixels clamped to zero)
/// before summation, as §4.4's pipeline does.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn hit_rate_from_sequences(
    access: &[Heatmap],
    miss: &[Heatmap],
    geometry: &HeatmapGeometry,
) -> HitRateSummary {
    assert_eq!(access.len(), miss.len(), "access/miss sequence length mismatch");
    let overlap = geometry.overlap_windows();
    let mut accesses = 0.0;
    let mut misses = 0.0;
    for (k, (a, m)) in access.iter().zip(miss).enumerate() {
        let from = if k == 0 { 0 } else { overlap };
        accesses += a.column_range_sum(from, a.width());
        misses += m.relu().column_range_sum(from, m.width());
    }
    HitRateSummary { accesses, misses }
}

/// Computes the *predicted* hit rate from generated miss heatmaps,
/// applying the physical constraint that a miss map is a sub-image of
/// its access map: each synthetic pixel is rectified and clamped to the
/// corresponding access pixel before summation.
///
/// # Panics
///
/// Panics if the sequences have different lengths or shapes.
pub fn predicted_hit_rate(
    access: &[Heatmap],
    synthetic: &[Heatmap],
    geometry: &HeatmapGeometry,
) -> HitRateSummary {
    assert_eq!(access.len(), synthetic.len(), "access/synthetic sequence length mismatch");
    let clamped: Vec<Heatmap> =
        synthetic.iter().zip(access).map(|(s, a)| s.relu().clamp_to(a)).collect();
    hit_rate_from_sequences(access, &clamped, geometry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HeatmapBuilder;
    use cachebox_trace::{Address, MemoryAccess, Trace};

    fn trace_with_hits(len: u64, miss_every: u64) -> (Trace, Vec<bool>) {
        let trace: Trace =
            (0..len).map(|i| MemoryAccess::load(i, Address::new(i % 32 * 64))).collect();
        let flags = (0..len).map(|i| i % miss_every != 0).collect();
        (trace, flags)
    }

    #[test]
    fn dedup_sum_equals_trace_len_across_overlaps() {
        for overlap in [0.0, 0.2, 0.3, 0.5, 0.7] {
            let g = HeatmapGeometry::new(8, 10, 3).with_overlap(overlap);
            let (trace, _) = trace_with_hits(517, 4);
            let maps = HeatmapBuilder::new(g).build(&trace);
            let total = dedup_pixel_sum(&maps, &g);
            assert_eq!(total as u64, 517, "overlap {overlap}");
        }
    }

    #[test]
    fn hit_rate_recovers_ground_truth_exactly() {
        let g = HeatmapGeometry::new(8, 10, 3).with_overlap(0.3);
        let (trace, flags) = trace_with_hits(600, 5); // 120 misses
        let pairs = HeatmapBuilder::new(g).build_pairs(&trace, &flags);
        let summary = hit_rate_from_pairs(&pairs, &g);
        assert_eq!(summary.accesses, 600.0);
        assert_eq!(summary.misses, 120.0);
        assert!((summary.hit_rate() - 0.8).abs() < 1e-12);
        assert!((summary.miss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn synthetic_negative_pixels_are_rectified() {
        let g = HeatmapGeometry::new(2, 2, 1).with_overlap(0.0);
        let access = vec![Heatmap::from_vec(2, 2, vec![2.0, 2.0, 2.0, 2.0])];
        let miss = vec![Heatmap::from_vec(2, 2, vec![-5.0, 1.0, 0.0, 1.0])];
        let s = hit_rate_from_sequences(&access, &miss, &g);
        assert_eq!(s.misses, 2.0, "negative pixel must not subtract misses");
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_clamps_overshoot() {
        let s = HitRateSummary { accesses: 10.0, misses: 15.0 };
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 1.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = HitRateSummary::default();
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sequences_validate_lengths() {
        let g = HeatmapGeometry::new(2, 2, 1);
        hit_rate_from_sequences(&[Heatmap::zeros(2, 2)], &[], &g);
    }

    #[test]
    fn predicted_hit_rate_clamps_hallucinated_misses() {
        let g = HeatmapGeometry::new(2, 2, 1).with_overlap(0.0);
        // Access: 2 accesses in one pixel. Synthetic misses hallucinate 5
        // misses there and 3 in an untouched pixel.
        let access = vec![Heatmap::from_vec(2, 2, vec![2.0, 0.0, 0.0, 0.0])];
        let synthetic = vec![Heatmap::from_vec(2, 2, vec![5.0, 3.0, -1.0, 0.0])];
        let s = predicted_hit_rate(&access, &synthetic, &g);
        assert_eq!(s.misses, 2.0, "misses clamp to the access ceiling");
        assert_eq!(s.hit_rate(), 0.0);
    }
}
