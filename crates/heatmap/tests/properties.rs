//! Property-based tests for heatmap construction and hit-rate recovery.

use cachebox_heatmap::{hitrate, AddressProjection, HeatmapBuilder, HeatmapGeometry, TimeAxis};
use cachebox_trace::{Address, MemoryAccess, Trace};
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(0u64..1 << 32, 1..400).prop_map(|addrs| {
        addrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| MemoryAccess::load(i as u64, Address::new(a)))
            .collect()
    })
}

fn arbitrary_geometry() -> impl Strategy<Value = HeatmapGeometry> {
    (2usize..64, 2usize..24, 1u64..10, 0.0f64..0.8)
        .prop_map(|(h, w, win, ov)| HeatmapGeometry::new(h, w, win).with_overlap(ov))
}

proptest! {
    /// Every access lands in exactly one deduplicated pixel, for any
    /// geometry, overlap, and projection.
    #[test]
    fn dedup_sum_is_exact(
        trace in arbitrary_trace(),
        geometry in arbitrary_geometry(),
        byte_projection in prop::bool::ANY,
    ) {
        let geometry = if byte_projection {
            geometry.with_projection(AddressProjection::Byte)
        } else {
            geometry
        };
        let maps = HeatmapBuilder::new(geometry).build(&trace);
        let total = hitrate::dedup_pixel_sum(&maps, &geometry);
        prop_assert_eq!(total as usize, trace.len());
    }

    /// Pixel sums per map never exceed the map's time span, and no pixel
    /// is negative.
    #[test]
    fn maps_are_nonnegative_and_bounded(
        trace in arbitrary_trace(),
        geometry in arbitrary_geometry(),
    ) {
        let maps = HeatmapBuilder::new(geometry).build(&trace);
        for m in &maps {
            prop_assert!(m.data().iter().all(|&v| v >= 0.0));
            prop_assert!(m.pixel_sum() <= geometry.units_per_heatmap() as f64);
        }
    }

    /// Pair building: miss pixel counts are dominated by access counts
    /// everywhere, and recovered rates respect the flags exactly.
    #[test]
    fn pair_domination_and_rate(
        entries in prop::collection::vec((0u64..1024, prop::bool::ANY), 1..300),
        geometry in arbitrary_geometry(),
    ) {
        let trace: Trace = entries
            .iter()
            .enumerate()
            .map(|(i, &(b, _))| MemoryAccess::load(i as u64, Address::new(b * 64)))
            .collect();
        let flags: Vec<bool> = entries.iter().map(|&(_, hit)| hit).collect();
        let pairs = HeatmapBuilder::new(geometry).build_pairs(&trace, &flags);
        for p in &pairs {
            for (m, a) in p.miss.data().iter().zip(p.access.data()) {
                prop_assert!(m <= a);
            }
        }
        let summary = hitrate::hit_rate_from_pairs(&pairs, &geometry);
        let true_hits = flags.iter().filter(|&&f| f).count() as f64;
        prop_assert!((summary.hit_rate() - true_hits / flags.len() as f64).abs() < 1e-9);
    }

    /// Instruction-axis binning agrees with access-axis binning when
    /// every access occupies one instruction slot.
    #[test]
    fn axes_agree_on_dense_traces(
        blocks in prop::collection::vec(0u64..512, 1..200),
        geometry in arbitrary_geometry(),
    ) {
        let trace: Trace = blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| MemoryAccess::load(i as u64, Address::new(b * 64)))
            .collect();
        let by_access = HeatmapBuilder::new(geometry).build(&trace);
        let by_instr =
            HeatmapBuilder::new(geometry).with_axis(TimeAxis::Instructions).build(&trace);
        prop_assert_eq!(by_access, by_instr);
    }

    /// The number of maps matches the geometry's predicted count.
    #[test]
    fn map_count_matches_prediction(
        len in 1usize..500,
        geometry in arbitrary_geometry(),
    ) {
        let trace: Trace =
            (0..len as u64).map(|i| MemoryAccess::load(i, Address::new(i))).collect();
        let maps = HeatmapBuilder::new(geometry).build(&trace);
        prop_assert_eq!(maps.len(), geometry.heatmap_count(len as u64));
    }
}
