//! Fault-injection tests: every failure a client can inflict — expired
//! deadlines, mid-request disconnects, hostile frames, corrupt
//! checkpoints — must produce a typed error (or a clean hangup), leave
//! the previous arena installed, and keep the service answering.

use cachebox::Scale;
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::infer::FrozenGenerator;
use cachebox_gan::{UNetConfig, UNetGenerator};
use cachebox_serve::wire::{read_frame, write_frame};
use cachebox_serve::{
    Client, Conn, ErrorKind, EvalRequest, Listener, Response, Server, ServerConfig, WorkloadSpec,
    MAX_FRAME,
};
use std::io::Write;
use std::sync::Arc;

fn frozen(seed: u64) -> FrozenGenerator {
    let scale = Scale::tiny();
    let config = UNetConfig::for_image_size(scale.image_size(), scale.ngf).with_param_features(2);
    FrozenGenerator::of(&mut UNetGenerator::new(config, seed))
}

fn start() -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr();
    let server = Arc::new(Server::new(ServerConfig::new(Scale::tiny()), frozen(1)));
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run(listener).expect("serve loop"))
    };
    (server, addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
}

fn eval_request(deadline_ms: Option<u64>) -> EvalRequest {
    EvalRequest {
        benchmarks: vec![WorkloadSpec { suite: "polybench".into(), index: 0, seed: 3 }],
        sets: 16,
        ways: 2,
        batch_size: Some(4),
        deadline_ms,
    }
}

/// Asserts the service still answers a real eval correctly — the
/// "stays up" clause of every fault test.
fn assert_service_alive(addr: &str, expect_fingerprint: u64) {
    let mut client = Client::connect(addr).expect("connect");
    match client.eval(eval_request(Some(30_000))).expect("eval") {
        Response::Eval { fingerprint, results, .. } => {
            assert_eq!(fingerprint, expect_fingerprint, "arena changed unexpectedly");
            assert_eq!(results.len(), 1);
        }
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn expired_deadline_is_a_typed_error_not_a_hang() {
    let (server, addr, handle) = start();
    let fp = server.arena().fingerprint;

    let mut client = Client::connect(&addr).expect("connect");
    // A zero deadline has already expired by the time a worker (or the
    // waiting connection thread) looks at it.
    match client.eval(eval_request(Some(0))).expect("eval reply") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Deadline),
        other => panic!("unexpected reply {other:?}"),
    }
    // Same connection, sane deadline: full service.
    match client.eval(eval_request(Some(30_000))).expect("eval") {
        Response::Eval { .. } => {}
        other => panic!("unexpected reply {other:?}"),
    }
    assert_service_alive(&addr, fp);
    stop(&addr, handle);
}

#[test]
fn mid_request_disconnects_do_not_kill_the_service() {
    let (server, addr, handle) = start();
    let fp = server.arena().fingerprint;

    // Disconnect after a *partial* frame (2 of 4 length bytes).
    {
        let mut conn = Conn::connect(&addr).expect("connect");
        conn.write_all(&[0, 0]).expect("partial prefix");
    } // dropped here

    // Disconnect right after a complete request, never reading the
    // reply — the worker's answer hits a closed socket.
    {
        let mut client = Client::connect(&addr).expect("connect");
        // Encode and send an eval without waiting for the response.
        let req = cachebox_serve::Request::Eval(eval_request(Some(30_000)));
        let mut conn = Conn::connect(&addr).expect("second connect");
        write_frame(&mut conn, cachebox_serve::proto::encode_request(&req).as_bytes())
            .expect("send");
        drop(conn);
        // And one normal call to interleave real traffic.
        assert!(matches!(client.status().expect("status"), Response::Status(_)));
    }

    // Give the abandoned worker reply a moment to hit the dead socket.
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert_service_alive(&addr, fp);
    stop(&addr, handle);
}

#[test]
fn corrupt_and_truncated_checkpoints_are_rejected_and_arena_survives() {
    let dir = std::env::temp_dir().join("cachebox_serve_fault_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let (server, addr, handle) = start();
    let fp = server.arena().fingerprint;
    let mut client = Client::connect(&addr).expect("connect");

    // Garbage bytes.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, b"\x00\xffnot a checkpoint").unwrap();
    match client.reload(&garbage.display().to_string()).expect("reload reply") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ReloadFailed),
        other => panic!("unexpected reply {other:?}"),
    }

    // A valid checkpoint cut off mid-file (when serialization is
    // available in this environment).
    let truncated = dir.join("truncated.json");
    if Checkpoint::capture(&mut UNetGenerator::new(
        UNetConfig::for_image_size(16, 4).with_param_features(2),
        9,
    ))
    .save(&truncated)
    .is_ok()
    {
        let bytes = std::fs::read(&truncated).unwrap();
        std::fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
        match client.reload(&truncated.display().to_string()).expect("reload reply") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ReloadFailed),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // A path that does not exist at all.
    match client.reload(&dir.join("missing.json").display().to_string()).expect("reload reply") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ReloadFailed),
        other => panic!("unexpected reply {other:?}"),
    }

    // Every rejection left the boot arena installed and serving.
    match client.status().expect("status") {
        Response::Status(s) => {
            assert_eq!(s.epoch, 0, "failed reloads must not advance the epoch");
            assert_eq!(s.fingerprint, fp);
        }
        other => panic!("unexpected reply {other:?}"),
    }
    assert_service_alive(&addr, fp);
    stop(&addr, handle);
    std::fs::remove_file(&garbage).ok();
    std::fs::remove_file(&truncated).ok();
}

#[test]
fn hostile_frames_get_typed_errors() {
    let (server, addr, handle) = start();
    let fp = server.arena().fingerprint;

    // Malformed JSON payload: typed error, connection stays usable.
    {
        let mut conn = Conn::connect(&addr).expect("connect");
        write_frame(&mut conn, b"this is not json").expect("send");
        let reply = read_frame(&mut conn).expect("read").expect("reply frame");
        let json =
            cachebox_telemetry::diff::parse_json(std::str::from_utf8(&reply).expect("utf8 reply"))
                .expect("reply is JSON");
        match cachebox_serve::proto::parse_response(&json).expect("typed reply") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Malformed),
            other => panic!("unexpected reply {other:?}"),
        }
        // Same connection still serves valid requests.
        write_frame(
            &mut conn,
            cachebox_serve::proto::encode_request(&cachebox_serve::Request::Status).as_bytes(),
        )
        .expect("send status");
        assert!(read_frame(&mut conn).expect("read").is_some());
    }

    // A valid request referencing an unknown suite: typed config error.
    {
        let mut client = Client::connect(&addr).expect("connect");
        let mut req = eval_request(Some(30_000));
        req.benchmarks[0].suite = "gap".into();
        match client.eval(req).expect("eval reply") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownConfig),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    // An oversized length prefix: one typed error, then the server
    // closes (the unread body leaves the stream unsynchronized).
    {
        let mut conn = Conn::connect(&addr).expect("connect");
        conn.write_all(&((MAX_FRAME as u32) + 1).to_be_bytes()).expect("evil prefix");
        conn.flush().expect("flush");
        let reply = read_frame(&mut conn).expect("read").expect("reply frame");
        let json =
            cachebox_telemetry::diff::parse_json(std::str::from_utf8(&reply).expect("utf8 reply"))
                .expect("reply is JSON");
        match cachebox_serve::proto::parse_response(&json).expect("typed reply") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Malformed),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(read_frame(&mut conn).expect("read after error").is_none(), "server closes");
    }

    assert_service_alive(&addr, fp);
    stop(&addr, handle);
}
