//! Property tests for the wire codec and protocol JSON: arbitrary
//! messages survive encode→decode bit-for-bit, and hostile bytes are
//! rejected with typed errors — never a panic.

use cachebox_metrics::BenchmarkAccuracy;
use cachebox_serve::proto::{
    encode_request, encode_response, parse_request, parse_response, ErrorKind, EvalRequest,
    Request, Response, StatusInfo, WorkloadSpec,
};
use cachebox_serve::wire::{read_frame, write_frame, WireError, MAX_FRAME};
use cachebox_telemetry::diff::parse_json;
use proptest::prelude::*;

// Includes quotes, backslashes, control and multi-byte characters so
// every escaping path in the codec is exercised.
const NAME_CHARS: &[char] =
    &['a', 'z', '0', '9', '/', '_', '"', ' ', '\\', '\n', '\r', '\t', '\u{1}', 'é', '🎉'];

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NAME_CHARS.len(), 0..24)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_CHARS[i]).collect())
}

fn arb_suite() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("spec".to_string()),
        Just("ligra".to_string()),
        Just("polybench".to_string()),
        proptest::collection::vec(0usize..26, 1..8)
            .prop_map(|ix| ix.into_iter().map(|i| (b'a' + i as u8) as char).collect()),
    ]
}

// Fields carried as JSON *numbers* (seeds, epochs, tallies) are
// restricted to f64's exact-integer domain by design — the parser
// rejects anything above 2^53 as malformed. Fingerprints cross the wire
// as hex strings precisely so they can keep all 64 bits.
fn arb_wire_u64() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..(1 << 53), Just(0), Just((1 << 53) - 1)]
}

fn opt_usize() -> impl Strategy<Value = Option<usize>> {
    prop_oneof![Just(None), (1usize..64).prop_map(Some)]
}

fn opt_u64() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (0u64..100_000).prop_map(Some)]
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    (arb_suite(), 0usize..64, arb_wire_u64()).prop_map(|(suite, index, seed)| WorkloadSpec {
        suite,
        index,
        seed,
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Status),
        Just(Request::Shutdown),
        arb_name().prop_map(|path| Request::Reload { path }),
        (
            proptest::collection::vec(arb_workload(), 0..4),
            1usize..4096,
            1usize..64,
            (opt_usize(), opt_u64()),
        )
            .prop_map(|(benchmarks, sets, ways, (batch_size, deadline_ms))| {
                Request::Eval(EvalRequest { benchmarks, sets, ways, batch_size, deadline_ms })
            }),
    ]
}

fn arb_rate() -> impl Strategy<Value = f64> {
    // Finite rates, including awkward mantissas; the codec must carry
    // every one of them bitwise.
    prop_oneof![0.0..1.0f64, Just(0.0), Just(1.0), Just(1.0 / 3.0), Just(f64::MIN_POSITIVE)]
}

fn arb_accuracy() -> impl Strategy<Value = BenchmarkAccuracy> {
    (arb_name(), arb_rate(), arb_rate()).prop_map(|(name, true_rate, predicted_rate)| {
        BenchmarkAccuracy { name, true_rate, predicted_rate }
    })
}

fn arb_error_kind() -> impl Strategy<Value = ErrorKind> {
    prop_oneof![
        Just(ErrorKind::Malformed),
        Just(ErrorKind::UnknownConfig),
        Just(ErrorKind::Overflow),
        Just(ErrorKind::Deadline),
        Just(ErrorKind::ReloadFailed),
        Just(ErrorKind::ShuttingDown),
        Just(ErrorKind::Internal),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Shutdown),
        (arb_wire_u64(), any::<u64>())
            .prop_map(|(epoch, fingerprint)| Response::Reload { epoch, fingerprint }),
        (arb_error_kind(), arb_name())
            .prop_map(|(kind, message)| Response::Error { kind, message }),
        (arb_wire_u64(), any::<u64>(), proptest::collection::vec(arb_accuracy(), 0..4)).prop_map(
            |(epoch, fingerprint, results)| Response::Eval { epoch, fingerprint, results }
        ),
        (
            (arb_wire_u64(), any::<u64>()),
            (any::<u32>(), any::<u32>()),
            (0usize..1000, 1usize..64, proptest::bool::ANY),
        )
            .prop_map(
                |((epoch, fingerprint), (served, errors), (queue_depth, workers, draining))| {
                    Response::Status(StatusInfo {
                        epoch,
                        fingerprint,
                        served: served as u64,
                        errors: errors as u64,
                        queue_depth,
                        workers,
                        draining,
                    })
                }
            ),
    ]
}

proptest! {
    #[test]
    fn requests_roundtrip_through_the_wire(req in arb_request()) {
        let encoded = encode_request(&req);
        let mut framed = Vec::new();
        write_frame(&mut framed, encoded.as_bytes()).unwrap();
        let payload = read_frame(&mut &framed[..]).unwrap().expect("one frame");
        let json = parse_json(std::str::from_utf8(&payload).unwrap()).expect("valid JSON");
        prop_assert_eq!(parse_request(&json).unwrap(), req);
    }

    #[test]
    fn responses_roundtrip_through_the_wire(resp in arb_response()) {
        let encoded = encode_response(&resp);
        let mut framed = Vec::new();
        write_frame(&mut framed, encoded.as_bytes()).unwrap();
        let payload = read_frame(&mut &framed[..]).unwrap().expect("one frame");
        let json = parse_json(std::str::from_utf8(&payload).unwrap()).expect("valid JSON");
        prop_assert_eq!(parse_response(&json).unwrap(), resp);
    }

    #[test]
    fn frames_roundtrip_arbitrary_payloads(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let back = read_frame(&mut &buf[..]).unwrap().expect("one frame");
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn truncated_frames_are_typed_rejections(payload in proptest::collection::vec(any::<u8>(), 1..256), keep in 0usize..260) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let keep = keep.min(buf.len().saturating_sub(1));
        match read_frame(&mut &buf[..keep]) {
            Ok(None) => prop_assert_eq!(keep, 0, "clean EOF only before any byte"),
            Err(WireError::Truncated) => prop_assert!(keep > 0),
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Whatever the bytes decode to, the reader returns — it must
        // not panic, and any declared length beyond the cap is typed.
        match read_frame(&mut &bytes[..]) {
            Ok(_) | Err(WireError::Truncated) | Err(WireError::Io(_)) => {}
            Err(WireError::Oversized(n)) => prop_assert!(n > MAX_FRAME),
            Err(WireError::Malformed(_)) => prop_assert!(false, "read_frame does not parse"),
        }
    }

    #[test]
    fn garbage_payloads_never_panic_the_request_parser(bytes in proptest::collection::vec(any::<u8>(), 0..160)) {
        // Arbitrary text: either it parses as JSON and then as a
        // request, or it is rejected with an error string — no panics.
        let text = String::from_utf8_lossy(&bytes);
        if let Ok(json) = parse_json(&text) {
            let _ = parse_request(&json);
            let _ = parse_response(&json);
        }
    }
}
