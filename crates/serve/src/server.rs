//! The evaluation service: listener, worker pool, and hot-reload.
//!
//! ## Threading model
//!
//! One **accept loop** (the thread that called [`Server::run`]) polls a
//! non-blocking listener and spawns a **connection thread** per client.
//! Connection threads parse frames, answer `status`/`reload`/
//! `shutdown` inline, and hand `eval` jobs to a bounded queue drained
//! by **worker threads**. The connection thread then waits on a
//! [`ReplySlot`] with the request's deadline; whoever loses the race —
//! the worker finishing or the deadline expiring — the client gets
//! exactly one reply, typed either way.
//!
//! ## Reload semantics
//!
//! `reload` runs entirely on the connection thread, *off* the worker
//! pool: the checkpoint is loaded and validated
//! ([`Checkpoint::load_frozen_validated`]) before anything is swapped,
//! and only then installed through the [`ArenaSwap`] epoch pointer.
//! Workers snapshot the pointer once per request (`Arc` clone), so an
//! in-flight eval finishes on the arena it started with — the old
//! arena stays alive until its last reader drops — and every reply
//! carries the `(epoch, fingerprint)` of the arena that actually
//! produced it. A failed validation leaves the installed arena
//! untouched and the service up.

use crate::proto::{
    encode_response, parse_request, ErrorKind, EvalRequest, Request, Response, StatusInfo,
};
use crate::queue::{Bounded, PushError};
use crate::wire::{read_frame, write_frame, WireError};
use cachebox::{Pipeline, Scale};
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::infer::{ArenaSwap, FrozenEpoch, FrozenGenerator};
use cachebox_nn::parallel::{par_map, Parallelism};
use cachebox_sim::CacheConfig;
use cachebox_telemetry as telemetry;
use cachebox_telemetry::Value;
use cachebox_workloads::{Benchmark, Suite, SuiteId};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Tuning knobs for one service instance.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Pipeline sizing (geometry, trace length, normalizer).
    pub scale: Scale,
    /// Eval worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a full queue answers `overflow`.
    pub queue_depth: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline_ms: u64,
    /// Inference batch size when a request carries none.
    pub default_batch: usize,
    /// Whether the served generator takes cache-parameter conditioning.
    pub conditioned: bool,
    /// Thread budget *inside* one eval (trace gen + sweep fan-out).
    pub eval_threads: usize,
}

impl ServerConfig {
    /// Sensible defaults for `scale`: two workers, serial per-eval
    /// fan-out, 16-deep queue, 30 s deadline.
    pub fn new(scale: Scale) -> Self {
        ServerConfig {
            scale,
            workers: 2,
            queue_depth: 16,
            default_deadline_ms: 30_000,
            default_batch: scale.batch_size,
            conditioned: true,
            eval_threads: 1,
        }
    }
}

/// A bound service endpoint.
pub enum Listener {
    /// TCP endpoint.
    Tcp(TcpListener),
    /// Unix-domain endpoint.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Binds `addr`: `tcp:HOST:PORT` (port 0 picks an ephemeral port)
    /// or `unix:PATH` (a stale socket file at `PATH` is removed).
    pub fn bind(addr: &str) -> std::io::Result<Listener> {
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            return Ok(Listener::Tcp(TcpListener::bind(hostport)?));
        }
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            let p = Path::new(path);
            if p.exists() {
                std::fs::remove_file(p)?;
            }
            return Ok(Listener::Unix(std::os::unix::net::UnixListener::bind(p)?));
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address {addr:?} is neither tcp:HOST:PORT nor unix:PATH"),
        ))
    }

    /// The bound address in the same `tcp:`/`unix:` syntax accepted by
    /// [`Listener::bind`] and [`Conn::connect`] — how a test discovers
    /// the ephemeral port it was given.
    pub fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => format!("unix:{}", a.as_pathname().unwrap_or(Path::new("?")).display()),
                Err(_) => "unix:?".to_string(),
            },
        }
    }

    fn set_nonblocking(&self, on: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// One client connection (either transport), usable as `Read + Write`.
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    /// Connects to a service address (`tcp:HOST:PORT` or `unix:PATH`).
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        if let Some(hostport) = addr.strip_prefix("tcp:") {
            let s = TcpStream::connect(hostport)?;
            s.set_nodelay(true).ok();
            return Ok(Conn::Tcp(s));
        }
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            return Ok(Conn::Unix(std::os::unix::net::UnixStream::connect(path)?));
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("address {addr:?} is neither tcp:HOST:PORT nor unix:PATH"),
        ))
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum SlotState {
    Waiting,
    Done(Response),
    Abandoned,
}

/// Single-use rendezvous between a connection thread and a worker.
struct ReplySlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot { state: Mutex::new(SlotState::Waiting), done: Condvar::new() })
    }

    /// Worker side: deliver the response. Returns `false` when the
    /// connection thread already gave up (deadline/disconnect) — the
    /// response is dropped, never delivered late or to the wrong
    /// request.
    fn fulfill(&self, resp: Response) -> bool {
        let mut s = self.state.lock().expect("slot lock poisoned");
        match *s {
            SlotState::Waiting => {
                *s = SlotState::Done(resp);
                drop(s);
                self.done.notify_one();
                true
            }
            SlotState::Abandoned => false,
            SlotState::Done(_) => unreachable!("reply slot fulfilled twice"),
        }
    }

    /// Connection side: wait for the worker until `deadline`. `None`
    /// marks the slot abandoned — a later [`fulfill`](Self::fulfill)
    /// becomes a no-op.
    fn wait_until(&self, deadline: Instant) -> Option<Response> {
        let mut s = self.state.lock().expect("slot lock poisoned");
        loop {
            if let SlotState::Done(_) = *s {
                match std::mem::replace(&mut *s, SlotState::Abandoned) {
                    SlotState::Done(resp) => return Some(resp),
                    _ => unreachable!(),
                }
            }
            let now = Instant::now();
            if now >= deadline {
                *s = SlotState::Abandoned;
                return None;
            }
            let (guard, _) = self.done.wait_timeout(s, deadline - now).expect("slot lock poisoned");
            s = guard;
        }
    }
}

struct Job {
    request: EvalRequest,
    deadline: Instant,
    enqueued: Instant,
    slot: Arc<ReplySlot>,
}

struct Shared {
    config: ServerConfig,
    pipeline: Pipeline,
    arena: ArenaSwap,
    queue: Bounded<Job>,
    served: AtomicU64,
    errors: AtomicU64,
    draining: AtomicBool,
    stop_accept: AtomicBool,
}

/// The evaluation service. Construct with a frozen arena, then
/// [`run`](Server::run) it on a bound [`Listener`] — the call blocks
/// until a client issues `shutdown` and the queue drains.
pub struct Server {
    shared: Arc<Shared>,
}

impl Server {
    /// Creates a service around an initial weight arena (epoch 0).
    pub fn new(config: ServerConfig, initial: FrozenGenerator) -> Server {
        let shared = Arc::new(Shared {
            pipeline: Pipeline::new(&config.scale),
            arena: ArenaSwap::new(initial),
            queue: Bounded::new(config.queue_depth),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            config,
        });
        Server { shared }
    }

    /// The installed arena snapshot — lets tests and embedding code
    /// observe `(epoch, fingerprint)` or perform an in-process swap.
    pub fn arena(&self) -> Arc<FrozenEpoch> {
        self.shared.arena.load()
    }

    /// Installs a new arena in-process (same path a wire `reload`
    /// takes after validation). Returns the new snapshot.
    pub fn install(&self, frozen: FrozenGenerator) -> Arc<FrozenEpoch> {
        let epoch = self.shared.arena.install(frozen);
        record_arena(&epoch);
        epoch
    }

    /// Serves until a `shutdown` request completes: accepts clients,
    /// fans evals across the worker pool, drains gracefully. Takes
    /// `&self` so an embedder (or test) can keep a handle for
    /// [`arena`](Server::arena)/[`install`](Server::install) while the
    /// service runs on another thread.
    pub fn run(&self, listener: Listener) -> std::io::Result<()> {
        let shared = Arc::clone(&self.shared);
        listener.set_nonblocking(true)?;
        telemetry::gauge("serve.workers", shared.config.workers as f64);
        record_arena(&shared.arena.load());

        let workers: Vec<_> = (0..shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        while !shared.stop_accept.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok(conn) => {
                    if let Conn::Tcp(s) = &conn {
                        s.set_nodelay(true).ok();
                    }
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_conn(&shared, conn));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Queue already closed by the shutdown handler; workers drain
        // what was accepted before the drain began, then exit.
        for w in workers {
            w.join().expect("worker thread panicked");
        }
        telemetry::flush_thread();
        Ok(())
    }
}

/// Publishes the installed arena's identity to the telemetry manifest —
/// the provenance pair the stream validator checks.
fn record_arena(epoch: &FrozenEpoch) {
    telemetry::manifest_kv("serve_epoch", Value::U64(epoch.epoch));
    telemetry::manifest_kv("serve_fingerprint", format!("{:016x}", epoch.fingerprint));
}

fn suite_id(name: &str) -> Option<SuiteId> {
    Some(match name {
        "spec" => SuiteId::Spec,
        "ligra" => SuiteId::Ligra,
        "polybench" => SuiteId::Polybench,
        _ => return None,
    })
}

/// Fast request validation on the connection thread, so configuration
/// mistakes bounce immediately instead of occupying queue slots.
fn validate_eval(req: &EvalRequest) -> Result<(), String> {
    if req.benchmarks.is_empty() {
        return Err("empty benchmark list".into());
    }
    if req.sets == 0 || req.ways == 0 {
        return Err(format!("cache geometry {}s{}w has a zero dimension", req.sets, req.ways));
    }
    if req.batch_size == Some(0) {
        return Err("batch_size must be positive".into());
    }
    for b in &req.benchmarks {
        if suite_id(&b.suite).is_none() {
            return Err(format!("unknown suite {:?}", b.suite));
        }
    }
    Ok(())
}

/// Rebuilds the benchmarks an eval names. Benchmarks are pure
/// functions of `(suite, index, seed)`, so this reproduces the exact
/// workload a local `evaluate_sweep` caller would build.
fn resolve_benchmarks(specs: &[crate::proto::WorkloadSpec]) -> Vec<Benchmark> {
    specs
        .iter()
        .map(|s| {
            let id = suite_id(&s.suite).expect("validated before enqueue");
            Suite::build(id, s.index + 1, s.seed).benchmarks()[s.index].clone()
        })
        .collect()
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        telemetry::gauge("serve.queue.depth", shared.queue.len() as f64);
        let resp = if Instant::now() >= job.deadline {
            Response::Error {
                kind: ErrorKind::Deadline,
                message: "deadline expired before a worker picked the request up".into(),
            }
        } else {
            run_eval(shared, &job.request)
        };
        telemetry::observe("serve.request.latency_ms", job.enqueued.elapsed().as_secs_f64() * 1e3);
        job.slot.fulfill(resp);
    }
    telemetry::flush_thread();
}

fn run_eval(shared: &Shared, req: &EvalRequest) -> Response {
    let _span = telemetry::span("serve.request.eval");
    // One pointer load pins this request to a single arena: reloads
    // landing from here on swap the pointer but cannot touch this Arc.
    let epoch = shared.arena.load();
    let par = Parallelism::new(shared.config.eval_threads.max(1));
    let config = CacheConfig::new(req.sets, req.ways);
    let batch = req.batch_size.unwrap_or(shared.config.default_batch).max(1);
    let benches = resolve_benchmarks(&req.benchmarks);
    let traces = par_map(par, &benches, |b| shared.pipeline.trace(b));
    let results = shared.pipeline.evaluate_sweep_frozen(
        par,
        &epoch.generator,
        &benches,
        &traces,
        &config,
        shared.config.conditioned,
        batch,
    );
    telemetry::counter("serve.request.benchmarks", benches.len() as u64);
    Response::Eval { epoch: epoch.epoch, fingerprint: epoch.fingerprint, results }
}

fn handle_reload(shared: &Shared, path: &str) -> Response {
    let _span = telemetry::span("serve.request.reload");
    // Load + validate off the worker pool; nothing is swapped on
    // failure and queued evals keep running on the installed arena.
    match Checkpoint::load_frozen_validated(Path::new(path)) {
        Ok(frozen) => {
            let epoch = shared.arena.install(frozen);
            record_arena(&epoch);
            telemetry::event(
                "serve.reload",
                &[
                    ("outcome", Value::Str("installed".into())),
                    ("epoch", Value::U64(epoch.epoch)),
                    ("fingerprint", Value::Str(format!("{:016x}", epoch.fingerprint))),
                    ("path", Value::Str(path.to_string())),
                ],
            );
            Response::Reload { epoch: epoch.epoch, fingerprint: epoch.fingerprint }
        }
        Err(e) => {
            telemetry::event(
                "serve.reload",
                &[
                    ("outcome", Value::Str("rejected".into())),
                    ("path", Value::Str(path.to_string())),
                    ("error", Value::Str(e.to_string())),
                ],
            );
            Response::Error { kind: ErrorKind::ReloadFailed, message: e.to_string() }
        }
    }
}

fn handle_eval(shared: &Shared, req: EvalRequest) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::Error {
            kind: ErrorKind::ShuttingDown,
            message: "service is draining".into(),
        };
    }
    if let Err(why) = validate_eval(&req) {
        return Response::Error { kind: ErrorKind::UnknownConfig, message: why };
    }
    let deadline_ms = req.deadline_ms.unwrap_or(shared.config.default_deadline_ms);
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let slot = ReplySlot::new();
    let job = Job { request: req, deadline, enqueued: Instant::now(), slot: Arc::clone(&slot) };
    match shared.queue.try_push(job) {
        Ok(depth) => telemetry::gauge("serve.queue.depth", depth as f64),
        Err(PushError::Full(_)) => {
            return Response::Error {
                kind: ErrorKind::Overflow,
                message: format!("queue full ({} pending)", shared.config.queue_depth),
            };
        }
        Err(PushError::Closed(_)) => {
            return Response::Error {
                kind: ErrorKind::ShuttingDown,
                message: "service is draining".into(),
            };
        }
    }
    slot.wait_until(deadline).unwrap_or_else(|| Response::Error {
        kind: ErrorKind::Deadline,
        message: format!("no worker finished within {deadline_ms} ms"),
    })
}

fn handle_request(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Eval(e) => handle_eval(shared, e),
        Request::Reload { path } => {
            if shared.draining.load(Ordering::SeqCst) {
                Response::Error {
                    kind: ErrorKind::ShuttingDown,
                    message: "service is draining".into(),
                }
            } else {
                handle_reload(shared, &path)
            }
        }
        Request::Status => {
            let _span = telemetry::span("serve.request.status");
            let epoch = shared.arena.load();
            Response::Status(StatusInfo {
                epoch: epoch.epoch,
                fingerprint: epoch.fingerprint,
                served: shared.served.load(Ordering::SeqCst),
                errors: shared.errors.load(Ordering::SeqCst),
                queue_depth: shared.queue.len(),
                workers: shared.config.workers,
                draining: shared.draining.load(Ordering::SeqCst),
            })
        }
        Request::Shutdown => {
            let _span = telemetry::span("serve.request.shutdown");
            shared.draining.store(true, Ordering::SeqCst);
            // Close refuses new jobs but lets workers drain accepted
            // ones; their connection threads still get real replies.
            shared.queue.close();
            shared.stop_accept.store(true, Ordering::SeqCst);
            telemetry::event("serve.shutdown", &[("graceful", Value::Bool(true))]);
            Response::Shutdown
        }
    }
}

fn handle_conn(shared: &Shared, mut conn: Conn) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(p)) => p,
            // Clean hangup between frames: the normal end of a session.
            Ok(None) => break,
            // Disconnect mid-frame: no one to answer.
            Err(WireError::Truncated) | Err(WireError::Io(_)) => break,
            // The declared length is hostile; answer once, then close —
            // the unread body leaves the stream unsynchronized.
            Err(e @ WireError::Oversized(_)) => {
                let resp = Response::Error { kind: ErrorKind::Malformed, message: e.to_string() };
                reply(shared, &mut conn, &resp).ok();
                break;
            }
            Err(WireError::Malformed(_)) => unreachable!("read_frame does not parse payloads"),
        };
        let resp = match std::str::from_utf8(&payload)
            .map_err(|e| e.to_string())
            .and_then(cachebox_telemetry::diff::parse_json)
            .and_then(|json| parse_request(&json))
        {
            Ok(req) => handle_request(shared, req),
            Err(why) => Response::Error { kind: ErrorKind::Malformed, message: why },
        };
        if reply(shared, &mut conn, &resp).is_err() {
            // Client vanished while we were answering; nothing left to
            // do for this connection.
            break;
        }
    }
    telemetry::flush_thread();
}

fn reply(shared: &Shared, conn: &mut Conn, resp: &Response) -> Result<(), WireError> {
    match resp {
        Response::Error { kind, .. } => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            telemetry::counter("serve.request.error", 1);
            telemetry::counter(&format!("serve.request.error.{}", kind.as_str()), 1);
        }
        _ => {
            shared.served.fetch_add(1, Ordering::SeqCst);
            telemetry::counter("serve.request.served", 1);
        }
    }
    write_frame(conn, encode_response(resp).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listener_rejects_unknown_scheme() {
        assert!(Listener::bind("http:127.0.0.1:80").is_err());
        assert!(Conn::connect("quic:nowhere").is_err());
    }

    #[test]
    fn tcp_listener_reports_ephemeral_port() {
        let l = Listener::bind("tcp:127.0.0.1:0").unwrap();
        let addr = l.local_addr();
        assert!(addr.starts_with("tcp:127.0.0.1:"), "got {addr}");
        assert!(!addr.ends_with(":0"), "ephemeral port resolved: {addr}");
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_roundtrips_path_and_clears_stale_socket() {
        let dir = std::env::temp_dir().join("cachebox_serve_sock_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.sock");
        let addr = format!("unix:{}", path.display());
        let first = Listener::bind(&addr).unwrap();
        assert_eq!(first.local_addr(), addr);
        drop(first);
        // The socket file lingers after drop; rebinding must clear it.
        let second = Listener::bind(&addr).unwrap();
        assert_eq!(second.local_addr(), addr);
        drop(second);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reply_slot_delivers_once_and_ignores_late_fulfill() {
        let slot = ReplySlot::new();
        assert!(slot.fulfill(Response::Shutdown));
        assert_eq!(
            slot.wait_until(Instant::now() + Duration::from_millis(10)),
            Some(Response::Shutdown)
        );
        // Expired waiter abandons; a late worker reply is dropped.
        let slot = ReplySlot::new();
        assert_eq!(slot.wait_until(Instant::now()), None);
        assert!(!slot.fulfill(Response::Shutdown));
    }

    #[test]
    fn eval_validation_catches_bad_configs() {
        let ok = EvalRequest {
            benchmarks: vec![crate::proto::WorkloadSpec {
                suite: "polybench".into(),
                index: 0,
                seed: 3,
            }],
            sets: 16,
            ways: 2,
            batch_size: None,
            deadline_ms: None,
        };
        assert!(validate_eval(&ok).is_ok());
        let mut bad = ok.clone();
        bad.benchmarks.clear();
        assert!(validate_eval(&bad).is_err());
        let mut bad = ok.clone();
        bad.sets = 0;
        assert!(validate_eval(&bad).is_err());
        let mut bad = ok.clone();
        bad.benchmarks[0].suite = "gap".into();
        assert!(validate_eval(&bad).is_err());
        let mut bad = ok;
        bad.batch_size = Some(0);
        assert!(validate_eval(&bad).is_err());
    }
}
