//! Request/response message types and their JSON wire forms.
//!
//! Payloads are JSON objects discriminated by an `"op"` field
//! (requests) or an `"ok"` flag (responses). Encoding is hand-rolled
//! and decoding reuses the telemetry crate's strict JSON parser, so the
//! protocol has no serialization dependency and the same codec runs in
//! the server, the client, and the property tests.
//!
//! Two representation choices worth knowing:
//!
//! * **Hit rates travel as shortest-roundtrip decimals.** Rust's `f64`
//!   `Display` prints the shortest string that parses back to the same
//!   bits, so rates cross the wire bitwise intact — the foundation of
//!   the service's "identical to in-process `evaluate_sweep`"
//!   guarantee.
//! * **Arena fingerprints travel as 16-digit hex strings**, not JSON
//!   numbers: a `u64` does not survive the f64 number pipeline above
//!   2^53.

use crate::wire::json_escape;
use cachebox_metrics::BenchmarkAccuracy;
use cachebox_telemetry::diff::Json;

/// One benchmark identity: suite name + index + generation seed.
/// Benchmarks are pure functions of this triple, so the server rebuilds
/// the exact workload the client means without shipping traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Suite name: `spec`, `ligra`, or `polybench`.
    pub suite: String,
    /// Benchmark index within the suite.
    pub index: usize,
    /// Suite generation seed.
    pub seed: u64,
}

/// An `eval` request: score the current model on `benchmarks` under one
/// cache configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRequest {
    /// Workloads to score.
    pub benchmarks: Vec<WorkloadSpec>,
    /// Cache sets.
    pub sets: usize,
    /// Cache ways (associativity).
    pub ways: usize,
    /// Inference batch size; server default when absent.
    pub batch_size: Option<usize>,
    /// Per-request deadline; server default when absent.
    pub deadline_ms: Option<u64>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Generate → simulate → infer → score.
    Eval(EvalRequest),
    /// Validate the checkpoint at `path` and hot-swap the weight arena.
    Reload {
        /// Checkpoint path on the server's filesystem.
        path: String,
    },
    /// Service health and arena provenance.
    Status,
    /// Graceful drain: finish queued work, then stop.
    Shutdown,
}

/// Machine-readable error category carried by error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable frame or request object.
    Malformed,
    /// The request references a suite/configuration the server cannot
    /// build (unknown suite name, zero sets/ways, empty benchmark list).
    UnknownConfig,
    /// The request queue is full; retry later.
    Overflow,
    /// The request's deadline expired before a worker finished it.
    Deadline,
    /// Checkpoint validation failed; the previous arena stays installed.
    ReloadFailed,
    /// The service is draining and accepts no new work.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// Wire tag.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::UnknownConfig => "unknown_config",
            ErrorKind::Overflow => "overflow",
            ErrorKind::Deadline => "deadline",
            ErrorKind::ReloadFailed => "reload_failed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire tag.
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "malformed" => ErrorKind::Malformed,
            "unknown_config" => ErrorKind::UnknownConfig,
            "overflow" => ErrorKind::Overflow,
            "deadline" => ErrorKind::Deadline,
            "reload_failed" => ErrorKind::ReloadFailed,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// `status` reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusInfo {
    /// Arena generation counter (0 = the boot arena).
    pub epoch: u64,
    /// Fingerprint of the installed arena's weights.
    pub fingerprint: u64,
    /// Requests answered successfully since boot.
    pub served: u64,
    /// Error replies since boot.
    pub errors: u64,
    /// Eval jobs currently queued.
    pub queue_depth: usize,
    /// Worker-thread count.
    pub workers: usize,
    /// True once a shutdown has started.
    pub draining: bool,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Scored benchmarks, tagged with the arena that produced them.
    Eval {
        /// Arena generation that served this request.
        epoch: u64,
        /// Weight fingerprint of that arena — every result in this
        /// reply came from this one arena (no mixed-arena inference).
        fingerprint: u64,
        /// Per-benchmark true/predicted hit rates.
        results: Vec<BenchmarkAccuracy>,
    },
    /// Reload succeeded; the new arena's identity.
    Reload {
        /// New arena generation.
        epoch: u64,
        /// New arena fingerprint.
        fingerprint: u64,
    },
    /// Service health.
    Status(StatusInfo),
    /// Drain acknowledged.
    Shutdown,
    /// Typed failure; the connection stays usable.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

fn hex(fp: u64) -> String {
    format!("{fp:016x}")
}

fn from_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad fingerprint {s:?}: {e}"))
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    field(j, key)?.as_str().map(str::to_string).ok_or_else(|| format!("field {key:?} not a string"))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    let v = field(j, key)?.as_f64().ok_or_else(|| format!("field {key:?} not a number"))?;
    if v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
        return Err(format!("field {key:?} not an unsigned integer: {v}"));
    }
    Ok(v as u64)
}

fn usize_field(j: &Json, key: &str) -> Result<usize, String> {
    Ok(u64_field(j, key)? as usize)
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    field(j, key)?.as_f64().ok_or_else(|| format!("field {key:?} not a number"))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, String> {
    match field(j, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("field {key:?} not a bool")),
    }
}

fn opt_u64_field(j: &Json, key: &str) -> Result<Option<u64>, String> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => u64_field(j, key).map(Some),
    }
}

/// Encodes a request as its JSON wire form.
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Eval(e) => {
            let benches: Vec<String> = e
                .benchmarks
                .iter()
                .map(|b| {
                    format!(
                        r#"{{"suite":"{}","index":{},"seed":{}}}"#,
                        json_escape(&b.suite),
                        b.index,
                        b.seed
                    )
                })
                .collect();
            let mut s = format!(
                r#"{{"op":"eval","benchmarks":[{}],"sets":{},"ways":{}"#,
                benches.join(","),
                e.sets,
                e.ways
            );
            if let Some(b) = e.batch_size {
                s.push_str(&format!(r#","batch_size":{b}"#));
            }
            if let Some(d) = e.deadline_ms {
                s.push_str(&format!(r#","deadline_ms":{d}"#));
            }
            s.push('}');
            s
        }
        Request::Reload { path } => {
            format!(r#"{{"op":"reload","path":"{}"}}"#, json_escape(path))
        }
        Request::Status => r#"{"op":"status"}"#.to_string(),
        Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
    }
}

/// Parses a request from its decoded JSON form.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn parse_request(j: &Json) -> Result<Request, String> {
    let op = str_field(j, "op")?;
    match op.as_str() {
        "eval" => {
            let list = match field(j, "benchmarks")? {
                Json::Arr(items) => items,
                _ => return Err("field \"benchmarks\" not an array".into()),
            };
            let benchmarks = list
                .iter()
                .map(|b| {
                    Ok(WorkloadSpec {
                        suite: str_field(b, "suite")?,
                        index: usize_field(b, "index")?,
                        seed: u64_field(b, "seed")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Request::Eval(EvalRequest {
                benchmarks,
                sets: usize_field(j, "sets")?,
                ways: usize_field(j, "ways")?,
                batch_size: opt_u64_field(j, "batch_size")?.map(|v| v as usize),
                deadline_ms: opt_u64_field(j, "deadline_ms")?,
            }))
        }
        "reload" => Ok(Request::Reload { path: str_field(j, "path")? }),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Encodes a response as its JSON wire form.
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Eval { epoch, fingerprint, results } => {
            let rows: Vec<String> = results
                .iter()
                .map(|r| {
                    format!(
                        r#"{{"name":"{}","true_rate":{},"predicted_rate":{},"error_pp":{}}}"#,
                        json_escape(&r.name),
                        r.true_rate,
                        r.predicted_rate,
                        r.abs_pct_diff()
                    )
                })
                .collect();
            format!(
                r#"{{"ok":true,"op":"eval","epoch":{},"fingerprint":"{}","results":[{}]}}"#,
                epoch,
                hex(*fingerprint),
                rows.join(",")
            )
        }
        Response::Reload { epoch, fingerprint } => format!(
            r#"{{"ok":true,"op":"reload","epoch":{},"fingerprint":"{}"}}"#,
            epoch,
            hex(*fingerprint)
        ),
        Response::Status(s) => format!(
            concat!(
                r#"{{"ok":true,"op":"status","epoch":{},"fingerprint":"{}","served":{},"#,
                r#""errors":{},"queue_depth":{},"workers":{},"draining":{}}}"#
            ),
            s.epoch,
            hex(s.fingerprint),
            s.served,
            s.errors,
            s.queue_depth,
            s.workers,
            s.draining
        ),
        Response::Shutdown => r#"{"ok":true,"op":"shutdown"}"#.to_string(),
        Response::Error { kind, message } => format!(
            r#"{{"ok":false,"kind":"{}","message":"{}"}}"#,
            kind.as_str(),
            json_escape(message)
        ),
    }
}

/// Parses a response from its decoded JSON form.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn parse_response(j: &Json) -> Result<Response, String> {
    if !bool_field(j, "ok")? {
        let kind = str_field(j, "kind")?;
        let kind = ErrorKind::parse(&kind).ok_or_else(|| format!("unknown error kind {kind:?}"))?;
        return Ok(Response::Error { kind, message: str_field(j, "message")? });
    }
    let op = str_field(j, "op")?;
    match op.as_str() {
        "eval" => {
            let list = match field(j, "results")? {
                Json::Arr(items) => items,
                _ => return Err("field \"results\" not an array".into()),
            };
            let results = list
                .iter()
                .map(|r| {
                    Ok(BenchmarkAccuracy {
                        name: str_field(r, "name")?,
                        true_rate: f64_field(r, "true_rate")?,
                        predicted_rate: f64_field(r, "predicted_rate")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Response::Eval {
                epoch: u64_field(j, "epoch")?,
                fingerprint: from_hex(&str_field(j, "fingerprint")?)?,
                results,
            })
        }
        "reload" => Ok(Response::Reload {
            epoch: u64_field(j, "epoch")?,
            fingerprint: from_hex(&str_field(j, "fingerprint")?)?,
        }),
        "status" => Ok(Response::Status(StatusInfo {
            epoch: u64_field(j, "epoch")?,
            fingerprint: from_hex(&str_field(j, "fingerprint")?)?,
            served: u64_field(j, "served")?,
            errors: u64_field(j, "errors")?,
            queue_depth: usize_field(j, "queue_depth")?,
            workers: usize_field(j, "workers")?,
            draining: bool_field(j, "draining")?,
        })),
        "shutdown" => Ok(Response::Shutdown),
        other => Err(format!("unknown response op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_telemetry::diff::parse_json;

    fn req_roundtrip(req: &Request) {
        let json = parse_json(&encode_request(req)).expect("encoder emits valid JSON");
        assert_eq!(&parse_request(&json).unwrap(), req);
    }

    fn resp_roundtrip(resp: &Response) {
        let json = parse_json(&encode_response(resp)).expect("encoder emits valid JSON");
        assert_eq!(&parse_response(&json).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        req_roundtrip(&Request::Status);
        req_roundtrip(&Request::Shutdown);
        req_roundtrip(&Request::Reload { path: "/tmp/with \"quotes\"\n.json".into() });
        req_roundtrip(&Request::Eval(EvalRequest {
            benchmarks: vec![
                WorkloadSpec { suite: "polybench".into(), index: 0, seed: 3 },
                WorkloadSpec { suite: "spec".into(), index: 7, seed: 42 },
            ],
            sets: 16,
            ways: 2,
            batch_size: Some(4),
            deadline_ms: None,
        }));
    }

    #[test]
    fn responses_roundtrip() {
        resp_roundtrip(&Response::Shutdown);
        resp_roundtrip(&Response::Reload { epoch: 3, fingerprint: u64::MAX });
        resp_roundtrip(&Response::Error {
            kind: ErrorKind::Deadline,
            message: "2000 ms elapsed".into(),
        });
        resp_roundtrip(&Response::Status(StatusInfo {
            epoch: 2,
            fingerprint: 0xdead_beef,
            served: 10,
            errors: 1,
            queue_depth: 0,
            workers: 2,
            draining: false,
        }));
        // Rates with long mantissas must cross the wire bitwise intact.
        resp_roundtrip(&Response::Eval {
            epoch: 1,
            fingerprint: 0x0123_4567_89ab_cdef,
            results: vec![BenchmarkAccuracy {
                name: "poly/x".into(),
                true_rate: 0.123_456_789_012_345_67,
                predicted_rate: 2.0 / 3.0,
            }],
        });
    }

    #[test]
    fn fingerprint_hex_preserves_all_64_bits() {
        for fp in [0, 1, u64::MAX, 0x8000_0000_0000_0000, (1 << 53) + 1] {
            assert_eq!(from_hex(&hex(fp)).unwrap(), fp);
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for text in [
            r#"{"op":"nope"}"#,
            r#"{"benchmarks":[]}"#,
            r#"{"op":"eval","benchmarks":"not a list","sets":1,"ways":1}"#,
            r#"{"op":"eval","benchmarks":[{"suite":3}],"sets":1,"ways":1}"#,
            r#"{"op":"reload"}"#,
            r#"{"op":"eval","benchmarks":[],"sets":-4,"ways":1}"#,
        ] {
            let json = parse_json(text).unwrap();
            assert!(parse_request(&json).is_err(), "accepted: {text}");
        }
    }
}
