//! Bounded MPMC job queue on `Mutex` + `Condvar`.
//!
//! Backpressure is explicit: a full queue rejects the push immediately
//! (the server turns that into a typed `overflow` reply) instead of
//! blocking the connection thread, and closing the queue wakes every
//! blocked consumer so workers can drain remaining jobs and exit — the
//! graceful-shutdown path.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the job is handed back.
    Full(T),
    /// The queue is closed (service draining); the job is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking. On success returns the queue depth
    /// *after* the push (for the telemetry gauge).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] once
    /// [`Bounded::close`] was called; both return the item.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Dequeues, blocking while the queue is open and empty. Returns
    /// `None` only when the queue is closed *and* drained — a worker's
    /// signal to exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: future pushes fail, consumers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth (racy, for telemetry/status only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// True when empty at the instant of the call.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        // Close still drains what was accepted, in order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give consumers a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_one_consumer_sees_every_item() {
        let q = Arc::new(Bounded::new(64));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..16u32 {
                        loop {
                            match q.try_push(p * 100 + i) {
                                Ok(_) => break,
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        got.sort_unstable();
        let mut want: Vec<u32> = (0..4).flat_map(|p| (0..16).map(move |i| p * 100 + i)).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
