//! The evaluation-service binary.
//!
//! ```text
//! cachebox_serve --listen tcp:127.0.0.1:7410 --scale tiny \
//!     [--checkpoint model.json] [--workers 2] [--queue-depth 16] \
//!     [--deadline-ms 30000] [--eval-threads 1] [--seed 42] \
//!     [--telemetry serve.jsonl] [--no-summary]
//! ```
//!
//! Boots with the checkpoint's weights when `--checkpoint` is given
//! (refusing invalid files), otherwise with a deterministic untrained
//! generator seeded from `--seed` — enough for protocol smoke tests
//! and identical to what `Scale`-matched local code would build.

use cachebox::Scale;
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::infer::FrozenGenerator;
use cachebox_gan::{UNetConfig, UNetGenerator};
use cachebox_serve::{Listener, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    listen: String,
    scale: Scale,
    scale_name: String,
    seed: Option<u64>,
    checkpoint: Option<PathBuf>,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    eval_threads: usize,
    telemetry: Option<PathBuf>,
    summary: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: cachebox_serve --listen tcp:HOST:PORT|unix:PATH [--scale tiny|small|experiment]\n\
         \x20      [--checkpoint FILE] [--workers N] [--queue-depth N] [--deadline-ms N]\n\
         \x20      [--eval-threads N] [--seed N] [--telemetry FILE.jsonl] [--no-summary]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: String::new(),
        scale: Scale::tiny(),
        scale_name: "tiny".into(),
        seed: None,
        checkpoint: None,
        workers: 2,
        queue_depth: 16,
        deadline_ms: 30_000,
        eval_threads: 1,
        telemetry: None,
        summary: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--scale" => {
                args.scale_name = value("--scale");
                args.scale = match args.scale_name.as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    "experiment" => Scale::experiment(),
                    other => {
                        eprintln!("unknown scale {other:?}");
                        usage()
                    }
                };
            }
            "--seed" => args.seed = Some(parse_num(&value("--seed"), "--seed")),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers") as usize,
            "--queue-depth" => {
                args.queue_depth = parse_num(&value("--queue-depth"), "--queue-depth") as usize
            }
            "--deadline-ms" => {
                args.deadline_ms = parse_num(&value("--deadline-ms"), "--deadline-ms")
            }
            "--eval-threads" => {
                args.eval_threads = parse_num(&value("--eval-threads"), "--eval-threads") as usize
            }
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry"))),
            "--no-summary" => args.summary = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.listen.is_empty() {
        eprintln!("--listen is required");
        usage();
    }
    args
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects an unsigned integer, got {s:?}");
        usage()
    })
}

fn boot_arena(args: &Args) -> Result<FrozenGenerator, String> {
    if let Some(path) = &args.checkpoint {
        return Checkpoint::load_frozen_validated(path)
            .map_err(|e| format!("cannot serve checkpoint {}: {e}", path.display()));
    }
    let seed = args.seed.unwrap_or(args.scale.seed);
    let config =
        UNetConfig::for_image_size(args.scale.image_size(), args.scale.ngf).with_param_features(2);
    Ok(FrozenGenerator::of(&mut UNetGenerator::new(config, seed)))
}

fn main() -> ExitCode {
    let args = parse_args();
    let guard = args.telemetry.as_ref().map(|path| {
        cachebox_telemetry::init(
            cachebox_telemetry::TelemetryConfig::new("cachebox_serve")
                .with_jsonl(path)
                .with_summary(args.summary)
                .with_threads(args.workers)
                .with_seed(args.seed.unwrap_or(args.scale.seed))
                .with_kv("scale", args.scale_name.clone())
                .with_kv("listen", args.listen.clone()),
        )
    });

    let frozen = match boot_arena(&args) {
        Ok(f) => f,
        Err(why) => {
            eprintln!("cachebox_serve: {why}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match Listener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cachebox_serve: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };

    let mut config = ServerConfig::new(args.scale);
    config.workers = args.workers.max(1);
    config.queue_depth = args.queue_depth.max(1);
    config.default_deadline_ms = args.deadline_ms.max(1);
    config.eval_threads = args.eval_threads.max(1);

    eprintln!(
        "cachebox_serve: listening on {} (scale {}, {} workers, queue {})",
        listener.local_addr(),
        args.scale_name,
        config.workers,
        config.queue_depth
    );
    let server = Server::new(config, frozen);
    let result = server.run(listener);
    if let Some(g) = guard {
        g.finish();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cachebox_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
