//! Length-prefixed frame codec.
//!
//! Every message on a service connection — request or response — is one
//! *frame*: a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON. Length prefixes make message boundaries explicit
//! (no sentinel scanning, binary-safe payloads) and let the reader
//! reject oversized frames *before* allocating, so a hostile or confused
//! client cannot balloon server memory with a giant length word.
//!
//! Frames larger than [`MAX_FRAME`] are refused on both send and
//! receive. All failure modes are typed ([`WireError`]) so the server
//! can answer malformed traffic with a structured error instead of
//! disconnecting.

use std::io::{Read, Write};

/// Hard ceiling on one frame's payload, send and receive (1 MiB). An
/// `eval` response for a full experiment-scale sweep is a few KiB; the
/// margin is for future batched requests, not for trust.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed failures of the frame codec.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame (mid-length or mid-payload): the
    /// peer disconnected while sending, or sent a short write.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`]; carries the declared
    /// size. The frame body was *not* read.
    Oversized(usize),
    /// Transport failure underneath the codec.
    Io(std::io::Error),
    /// The payload is not the UTF-8 JSON the protocol expects.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Writes one frame: big-endian length prefix, then the payload.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload exceeds [`MAX_FRAME`]
/// (nothing is written), or an I/O failure from the transport.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized(payload.len()));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (the
/// peer closed between frames — the normal way a client hangs up).
///
/// # Errors
///
/// [`WireError::Truncated`] when the stream ends *inside* a frame,
/// [`WireError::Oversized`] when the prefix exceeds [`MAX_FRAME`] (the
/// body is left unread), or an I/O failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so zero-bytes-then-EOF means "no more
    // frames" rather than truncation.
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included). Control characters take the `\u00XX` form.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_payloads() {
        for payload in [&b""[..], b"{}", b"hello \xf0\x9f\x8e\x89", &[0u8; 1000]] {
            let mut buf = Vec::new();
            write_frame(&mut buf, payload).unwrap();
            assert_eq!(buf.len(), 4 + payload.len());
            let back = read_frame(&mut &buf[..]).unwrap().expect("one frame present");
            assert_eq!(back, payload);
        }
    }

    #[test]
    fn clean_eof_is_none_but_partial_frame_is_truncated() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut &buf[..cut]) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_is_rejected_on_both_sides() {
        let big = vec![b'x'; MAX_FRAME + 1];
        assert!(matches!(write_frame(&mut Vec::new(), &big), Err(WireError::Oversized(_))));
        let mut evil = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        evil.extend_from_slice(b"tiny");
        assert!(matches!(read_frame(&mut &evil[..]), Err(WireError::Oversized(_))));
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }
}
