//! Blocking client for the evaluation service.

use crate::proto::{encode_request, parse_response, EvalRequest, Request, Response};
use crate::server::Conn;
use crate::wire::{read_frame, write_frame, WireError};
use cachebox_telemetry::diff::parse_json;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Frame codec or transport failure.
    Wire(WireError),
    /// The server closed the connection instead of answering.
    Disconnected,
    /// The reply frame was not a valid response object.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected client issuing one request at a time.
pub struct Client {
    conn: Conn,
}

impl Client {
    /// Connects to `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// Transport-level connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Ok(Client { conn: Conn::connect(addr)? })
    }

    /// Like [`Client::connect`] but retrying for up to `timeout` — for
    /// racing a service that is still binding its socket.
    ///
    /// # Errors
    ///
    /// The last connection failure once the timeout elapses.
    pub fn connect_with_retry(addr: &str, timeout: std::time::Duration) -> std::io::Result<Client> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
            }
        }
    }

    /// Sends one request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparseable reply. A *typed* server
    /// error arrives as `Ok(Response::Error { .. })`.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, encode_request(req).as_bytes())?;
        let payload = read_frame(&mut self.conn)?.ok_or(ClientError::Disconnected)?;
        let text =
            std::str::from_utf8(&payload).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let json = parse_json(text).map_err(ClientError::Protocol)?;
        parse_response(&json).map_err(ClientError::Protocol)
    }

    /// `eval` convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn eval(&mut self, req: EvalRequest) -> Result<Response, ClientError> {
        self.call(&Request::Eval(req))
    }

    /// `reload` convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn reload(&mut self, path: &str) -> Result<Response, ClientError> {
        self.call(&Request::Reload { path: path.to_string() })
    }

    /// `status` convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn status(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Status)
    }

    /// `shutdown` convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.call(&Request::Shutdown)
    }
}
