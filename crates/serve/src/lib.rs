//! `cachebox-serve`: a long-running evaluation service.
//!
//! The paper's headline use case (Fig. 11 / RQ5) is answering cache
//! design-space queries faster than a conventional simulator. The batch
//! path — [`Pipeline::evaluate_sweep`](cachebox::Pipeline) over a
//! frozen weight arena — already amortizes inference *within* one
//! process, but every sweep still pays model construction and process
//! startup, and cannot pick up a newer checkpoint. This crate keeps the
//! whole trace→simulate→infer→score loop resident behind a socket:
//!
//! * **Protocol** ([`wire`], [`proto`]): length-prefixed JSON frames
//!   over TCP or a Unix socket; `eval`, `reload`, `status`, `shutdown`
//!   ops; typed error replies (`malformed`, `unknown_config`,
//!   `overflow`, `deadline`, …) instead of disconnects.
//! * **Service** ([`server`]): a bounded-queue worker pool around the
//!   same [`evaluate_sweep_frozen`](cachebox::Pipeline::evaluate_sweep_frozen)
//!   entry the in-process sweep uses, so served answers are bitwise
//!   identical to local evaluation; per-request deadlines; graceful
//!   drain.
//! * **Hot reload**: `reload` validates a checkpoint off the worker
//!   pool and swaps the frozen arena atomically through an epoch
//!   pointer ([`cachebox_gan::infer::ArenaSwap`]); in-flight requests
//!   finish on the arena they started with, and every reply names the
//!   `(epoch, fingerprint)` that produced it.
//! * **Client** ([`client`]): a small blocking client used by the
//!   `serve_client` smoke driver and the integration tests.
//!
//! See `docs/SERVING.md` for the wire format, reload semantics, and
//! the telemetry table.

pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use proto::{ErrorKind, EvalRequest, Request, Response, StatusInfo, WorkloadSpec};
pub use server::{Conn, Listener, Server, ServerConfig};
pub use wire::{WireError, MAX_FRAME};
