//! Comparison baselines for Table 1 of the paper (§6.2).
//!
//! The paper compares CBox's L1 miss-rate prediction against:
//!
//! * **HRD** — [Hierarchical Reuse Distance](hrd): predict from a lossy
//!   (log₂-bucketed) reuse-distance profile with a uniform set-pressure
//!   assumption.
//! * **STM** — [Spatio-Temporal Memory cloning](stm): profile the trace's
//!   stride/temporal structure, generate a synthetic *clone* trace, and
//!   simulate the clone.
//! * **REaLTabFormer** (three variants) — here [`TabSynth`](tabsynth), a
//!   tabular autoregressive trace synthesizer standing in for the
//!   transformer: per-column sampling (*Base*), reuse-bucket-conditioned
//!   (*RD*), and short-history in-context (*IC*) variants.
//!
//! All baselines implement [`MissRatePredictor`], so the Table 1 harness
//! treats them and CBox uniformly.

pub mod hrd;
pub mod stm;
pub mod tabsynth;

pub use hrd::Hrd;
pub use stm::Stm;
pub use tabsynth::{TabSynth, TabVariant};

use cachebox_sim::CacheConfig;
use cachebox_trace::Trace;

/// A model that predicts a cache's miss rate for a trace without exactly
/// simulating the trace.
pub trait MissRatePredictor: std::fmt::Debug {
    /// Short display name (for result tables).
    fn name(&self) -> &'static str;

    /// Predicted miss rate in `[0, 1]` for `trace` on `config`.
    fn predict_miss_rate(&self, trace: &Trace, config: &CacheConfig) -> f64;
}

/// Ground truth helper: the exact simulated miss rate.
pub fn true_miss_rate(trace: &Trace, config: &CacheConfig) -> f64 {
    let mut cache = cachebox_sim::Cache::new(*config);
    cache.run(trace).stats.miss_rate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachebox_trace::{Address, MemoryAccess};

    fn streaming_trace(n: u64) -> Trace {
        (0..n).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect()
    }

    #[test]
    fn all_predictors_return_valid_rates() {
        let trace = streaming_trace(4000);
        let config = CacheConfig::new(64, 4);
        let predictors: Vec<Box<dyn MissRatePredictor>> = vec![
            Box::new(Hrd::new()),
            Box::new(Stm::new(1)),
            Box::new(TabSynth::new(TabVariant::Base, 1)),
            Box::new(TabSynth::new(TabVariant::ReuseDistance, 1)),
            Box::new(TabSynth::new(TabVariant::InContext, 1)),
        ];
        for p in &predictors {
            let rate = p.predict_miss_rate(&trace, &config);
            assert!((0.0..=1.0).contains(&rate), "{} returned {rate}", p.name());
        }
    }

    #[test]
    fn streaming_trace_is_all_misses_in_truth() {
        let trace = streaming_trace(2000);
        let rate = true_miss_rate(&trace, &CacheConfig::new(16, 2));
        assert_eq!(rate, 1.0);
    }
}
