//! Spatio-Temporal Memory (STM) cloning.
//!
//! After Awad & Solihin (HPCA 2014): STM profiles a trace's *spatial*
//! behaviour (stride-transition statistics) and *temporal* behaviour
//! (reuse of recently touched blocks), generates a synthetic **clone**
//! trace from the profile, and predicts the miss rate by simulating the
//! clone. Accuracy is bounded by how much structure survives the
//! profile's compression.

use crate::MissRatePredictor;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::{Address, MemoryAccess, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Number of stride buckets retained in the spatial profile.
const MAX_STRIDES: usize = 16;
/// Temporal-reuse window (blocks of history the clone can re-reference).
const REUSE_WINDOW: usize = 256;

/// The trace profile STM extracts.
#[derive(Debug, Clone)]
pub struct StmProfile {
    /// Top block-stride values and their probabilities.
    strides: Vec<(i64, f64)>,
    /// Probability that an access re-references a recently used block
    /// rather than following a stride.
    temporal_reuse: f64,
    /// Distribution of reuse depths within the window (log₂ buckets).
    reuse_depths: Vec<f64>,
    /// Footprint in blocks (for cold-start placement).
    footprint: u64,
}

impl StmProfile {
    /// Profiles a trace at 64-byte block granularity.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two accesses.
    pub fn from_trace(trace: &Trace) -> Self {
        assert!(trace.len() >= 2, "trace too short to profile");
        let blocks: Vec<u64> = trace.iter().map(|a| a.address.block(6)).collect();
        // Temporal: how often does the next access hit the recent-window?
        let mut recent: Vec<u64> = Vec::new();
        let mut reuse_count = 0usize;
        let mut reuse_depths = vec![0f64; 16];
        let mut stride_counts: HashMap<i64, u64> = HashMap::new();
        for w in blocks.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            if let Some(pos) = recent.iter().rev().position(|&b| b == cur) {
                reuse_count += 1;
                let bucket = (usize::BITS - (pos + 1).leading_zeros()) as usize;
                reuse_depths[bucket.min(15)] += 1.0;
            } else {
                *stride_counts.entry(cur as i64 - prev as i64).or_insert(0) += 1;
            }
            recent.push(cur);
            if recent.len() > REUSE_WINDOW {
                recent.remove(0);
            }
        }
        let transitions = (blocks.len() - 1) as f64;
        let temporal_reuse = reuse_count as f64 / transitions;
        let mut strides: Vec<(i64, u64)> = stride_counts.into_iter().collect();
        strides.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        strides.truncate(MAX_STRIDES);
        let stride_total: u64 = strides.iter().map(|&(_, c)| c).sum::<u64>().max(1);
        let strides: Vec<(i64, f64)> =
            strides.into_iter().map(|(s, c)| (s, c as f64 / stride_total as f64)).collect();
        let depth_total: f64 = reuse_depths.iter().sum::<f64>().max(1.0);
        for d in &mut reuse_depths {
            *d /= depth_total;
        }
        StmProfile {
            strides,
            temporal_reuse,
            reuse_depths,
            footprint: trace.footprint_blocks(6).len() as u64,
        }
    }

    /// Generates a synthetic clone trace of `len` accesses.
    pub fn clone_trace(&self, len: usize, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57a7);
        let mut recent: Vec<u64> = Vec::with_capacity(REUSE_WINDOW);
        // Keep the walk inside a region proportional to the real
        // footprint so the clone's cold-miss volume matches.
        let region = (self.footprint.max(1)) * 4;
        let mut cur: u64 = region / 2;
        let mut out = Trace::with_capacity(len);
        for i in 0..len as u64 {
            let block = if !recent.is_empty() && rng.gen_bool(self.temporal_reuse.clamp(0.0, 1.0)) {
                // Temporal path: re-reference at a sampled depth.
                let depth = self.sample_depth(&mut rng).min(recent.len() - 1);
                recent[recent.len() - 1 - depth]
            } else if !self.strides.is_empty() {
                // Spatial path: follow a sampled stride.
                let s = self.sample_stride(&mut rng);
                cur.saturating_add_signed(s).min(region)
            } else {
                rng.gen_range(0..self.footprint.max(1))
            };
            cur = block;
            recent.push(block);
            if recent.len() > REUSE_WINDOW {
                recent.remove(0);
            }
            out.push(MemoryAccess::load(i, Address::new(block * 64)));
        }
        out
    }

    fn sample_stride(&self, rng: &mut StdRng) -> i64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for &(s, p) in &self.strides {
            acc += p;
            if u < acc {
                return s;
            }
        }
        self.strides.last().map(|&(s, _)| s).unwrap_or(1)
    }

    fn sample_depth(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (bucket, &p) in self.reuse_depths.iter().enumerate() {
            acc += p;
            if u < acc {
                let lo = if bucket == 0 { 0usize } else { 1 << (bucket - 1) };
                let hi = 1usize << bucket;
                return rng.gen_range(lo..hi.max(lo + 1));
            }
        }
        0
    }
}

/// The STM predictor: profile → clone → simulate.
#[derive(Debug, Clone, Copy)]
pub struct Stm {
    seed: u64,
}

impl Stm {
    /// Creates an STM predictor; `seed` drives clone generation.
    pub fn new(seed: u64) -> Self {
        Stm { seed }
    }
}

impl MissRatePredictor for Stm {
    fn name(&self) -> &'static str {
        "STM"
    }

    fn predict_miss_rate(&self, trace: &Trace, config: &CacheConfig) -> f64 {
        let profile = StmProfile::from_trace(trace);
        let clone = profile.clone_trace(trace.len(), self.seed);
        let mut cache = Cache::new(*config);
        cache.run(&clone).stats.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::true_miss_rate;

    fn cyclic_trace(blocks: u64, n: usize) -> Trace {
        (0..n as u64).map(|i| MemoryAccess::load(i, Address::new((i % blocks) * 64))).collect()
    }

    #[test]
    fn profile_captures_streaming_stride() {
        let trace: Trace =
            (0..2000u64).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect();
        let p = StmProfile::from_trace(&trace);
        assert_eq!(p.strides[0].0, 1, "dominant stride must be +1 block");
        assert!(p.strides[0].1 > 0.9);
        assert!(p.temporal_reuse < 0.05);
    }

    #[test]
    fn profile_captures_tight_reuse() {
        let trace = cyclic_trace(4, 2000);
        let p = StmProfile::from_trace(&trace);
        assert!(p.temporal_reuse > 0.9, "cyclic trace is all reuse: {}", p.temporal_reuse);
    }

    #[test]
    fn clone_is_deterministic_per_seed() {
        let p = StmProfile::from_trace(&cyclic_trace(8, 500));
        assert_eq!(p.clone_trace(100, 5), p.clone_trace(100, 5));
        assert_ne!(p.clone_trace(100, 5), p.clone_trace(100, 6));
    }

    #[test]
    fn prediction_is_close_for_small_working_set() {
        // Tight cyclic working set: truth is ~100% hits; the clone's
        // reuse structure must reproduce that.
        let trace = cyclic_trace(8, 5000);
        let config = CacheConfig::new(16, 4);
        let predicted = Stm::new(3).predict_miss_rate(&trace, &config);
        let truth = true_miss_rate(&trace, &config);
        assert!((predicted - truth).abs() < 0.15, "predicted {predicted:.3} vs true {truth:.3}");
    }

    #[test]
    fn prediction_is_high_for_streaming() {
        let trace: Trace =
            (0..4000u64).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect();
        let predicted = Stm::new(3).predict_miss_rate(&trace, &CacheConfig::new(16, 4));
        assert!(predicted > 0.8, "streaming clone should mostly miss: {predicted}");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn profile_rejects_tiny_trace() {
        StmProfile::from_trace(&Trace::new());
    }
}
