//! Hierarchical Reuse Distance miss-rate prediction.
//!
//! After Maeda et al. (HPCA 2017): rather than simulating the cache, HRD
//! summarizes the trace as a *reuse-distance profile* and derives each
//! cache level's miss rate analytically. The profile here is the log₂-
//! bucketed histogram from `cachebox-trace`; a set-associative cache of
//! `s` sets × `w` ways is approximated as a fully associative cache of
//! `s·w` blocks (the uniform set-pressure assumption). Both the bucketing
//! and the associativity approximation are deliberate sources of error —
//! they are what separates profile-based prediction from exact
//! simulation in Table 1.

use crate::MissRatePredictor;
use cachebox_sim::CacheConfig;
use cachebox_trace::{ReuseHistogram, Trace};

/// The HRD predictor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hrd {
    _private: (),
}

impl Hrd {
    /// Creates the predictor.
    pub fn new() -> Self {
        Hrd::default()
    }

    /// Predicts hit rates for several configurations from one shared
    /// profile (the "hierarchical" use-case: one pass, many levels).
    pub fn predict_many(&self, trace: &Trace, configs: &[CacheConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|config| {
                let hist = ReuseHistogram::from_trace(trace, config.block_offset_bits);
                1.0 - hist.hit_fraction_for_capacity(config.capacity_blocks())
            })
            .collect()
    }
}

impl MissRatePredictor for Hrd {
    fn name(&self) -> &'static str {
        "HRD"
    }

    fn predict_miss_rate(&self, trace: &Trace, config: &CacheConfig) -> f64 {
        let hist = ReuseHistogram::from_trace(trace, config.block_offset_bits);
        1.0 - hist.hit_fraction_for_capacity(config.capacity_blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::true_miss_rate;
    use cachebox_trace::{Address, MemoryAccess};
    use rand::{Rng, SeedableRng};

    fn zipf_trace(seed: u64, n: usize) -> Trace {
        // Cheap zipf-ish: hot block with probability 1/2, else uniform.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|i| {
                let block =
                    if rng.gen_bool(0.5) { rng.gen_range(0..32) } else { rng.gen_range(0..4096) };
                MemoryAccess::load(i, Address::new(block * 64))
            })
            .collect()
    }

    #[test]
    fn tracks_truth_within_tolerance_on_irregular_traces() {
        let hrd = Hrd::new();
        for seed in 0..3 {
            let trace = zipf_trace(seed, 20_000);
            let config = CacheConfig::new(64, 8);
            let predicted = hrd.predict_miss_rate(&trace, &config);
            let truth = true_miss_rate(&trace, &config);
            assert!(
                (predicted - truth).abs() < 0.10,
                "seed {seed}: predicted {predicted:.3} vs true {truth:.3}"
            );
        }
    }

    #[test]
    fn larger_cache_predicts_fewer_misses() {
        let hrd = Hrd::new();
        let trace = zipf_trace(7, 10_000);
        let small = hrd.predict_miss_rate(&trace, &CacheConfig::new(16, 2));
        let large = hrd.predict_miss_rate(&trace, &CacheConfig::new(256, 8));
        assert!(large <= small);
    }

    #[test]
    fn predict_many_matches_individual_calls() {
        let hrd = Hrd::new();
        let trace = zipf_trace(9, 5_000);
        let configs = [CacheConfig::new(64, 12), CacheConfig::new(1024, 8)];
        let many = hrd.predict_many(&trace, &configs);
        for (m, c) in many.iter().zip(&configs) {
            assert_eq!(*m, hrd.predict_miss_rate(&trace, c));
        }
    }
}
