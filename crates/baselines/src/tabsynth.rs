//! Tabular autoregressive trace synthesis (REaLTabFormer stand-in).
//!
//! Shi et al. (MEMSYS 2023) synthesize memory workloads with a tabular
//! transformer and validate the synthetic traces by comparing miss
//! ratios. A transformer is out of scope here, so `TabSynth` reproduces
//! the *evaluation contract* with a tabular frequency model in three
//! fidelity tiers mirroring the paper's columns:
//!
//! * [`TabVariant::Base`] — each trace column (block delta) is sampled
//!   independently from its marginal distribution.
//! * [`TabVariant::ReuseDistance`] — deltas are conditioned on a coarse
//!   reuse-distance bucket of the previous access.
//! * [`TabVariant::InContext`] — deltas are conditioned on the previous
//!   delta (a first-order in-context model).
//!
//! Prediction = synthesize a trace, simulate it, report its miss rate.

use crate::MissRatePredictor;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::{Address, MemoryAccess, ReuseDistanceEngine, Trace, INFINITE_DISTANCE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Fidelity tier of the tabular synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TabVariant {
    /// Independent marginal sampling (`Tab-Base`).
    Base,
    /// Reuse-bucket conditioning (`Tab-RD`).
    ReuseDistance,
    /// Previous-delta conditioning (`Tab-IC`).
    InContext,
}

impl TabVariant {
    /// Table 1 column label.
    pub const fn label(self) -> &'static str {
        match self {
            TabVariant::Base => "Tab-Base",
            TabVariant::ReuseDistance => "Tab-RD",
            TabVariant::InContext => "Tab-IC",
        }
    }
}

/// Coarse context bucket for conditioned variants.
fn reuse_bucket(distance: u64) -> u8 {
    if distance == INFINITE_DISTANCE {
        return 7;
    }
    (64 - distance.leading_zeros()).min(6) as u8
}

fn delta_bucket(delta: i64) -> i64 {
    // Quantize large deltas; keep small ones exact.
    if delta.abs() <= 8 {
        delta
    } else {
        let mag = 63 - (delta.unsigned_abs()).leading_zeros() as i64;
        delta.signum() * (1 << mag)
    }
}

/// The tabular synthesizer/predictor.
#[derive(Debug, Clone, Copy)]
pub struct TabSynth {
    variant: TabVariant,
    seed: u64,
}

impl TabSynth {
    /// Creates a synthesizer of the given fidelity tier.
    pub fn new(variant: TabVariant, seed: u64) -> Self {
        TabSynth { variant, seed }
    }

    /// Learns the frequency table and synthesizes a trace of the same
    /// length as `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than two accesses.
    pub fn synthesize(&self, trace: &Trace) -> Trace {
        assert!(trace.len() >= 2, "trace too short to model");
        let blocks: Vec<u64> = trace.iter().map(|a| a.address.block(6)).collect();
        // Context key per transition.
        let mut reuse = ReuseDistanceEngine::new();
        let mut contexts: Vec<u64> = Vec::with_capacity(blocks.len());
        let mut prev_delta: i64 = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let d = reuse.access(b);
            let ctx = match self.variant {
                TabVariant::Base => 0u64,
                TabVariant::ReuseDistance => reuse_bucket(d) as u64,
                TabVariant::InContext => delta_bucket(prev_delta) as u64 ^ 0x8000_0000,
            };
            contexts.push(ctx);
            if i > 0 {
                prev_delta = b as i64 - blocks[i - 1] as i64;
            }
        }
        // Frequency table: context -> (delta bucket -> count).
        let mut table: HashMap<u64, HashMap<i64, u64>> = HashMap::new();
        for i in 1..blocks.len() {
            let delta = delta_bucket(blocks[i] as i64 - blocks[i - 1] as i64);
            *table.entry(contexts[i]).or_default().entry(delta).or_insert(0) += 1;
        }
        // Flatten to sampling vectors.
        let sampling: HashMap<u64, (Vec<i64>, Vec<f64>)> = table
            .into_iter()
            .map(|(ctx, counts)| {
                let total: u64 = counts.values().sum();
                let mut deltas = Vec::with_capacity(counts.len());
                let mut cdf = Vec::with_capacity(counts.len());
                let mut acc = 0.0;
                for (d, c) in counts {
                    acc += c as f64 / total as f64;
                    deltas.push(d);
                    cdf.push(acc);
                }
                (ctx, (deltas, cdf))
            })
            .collect();
        // Generate.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7ab5);
        let mut cur = blocks[0];
        let mut prev_delta = 0i64;
        let mut reuse_gen = ReuseDistanceEngine::new();
        let mut out = Trace::with_capacity(trace.len());
        out.push(MemoryAccess::load(0, Address::new(cur * 64)));
        let mut last_rd = reuse_gen.access(cur);
        for i in 1..trace.len() as u64 {
            let ctx = match self.variant {
                TabVariant::Base => 0u64,
                TabVariant::ReuseDistance => reuse_bucket(last_rd) as u64,
                TabVariant::InContext => delta_bucket(prev_delta) as u64 ^ 0x8000_0000,
            };
            // Unknown contexts fall back to any learned distribution.
            let (deltas, cdf) = sampling
                .get(&ctx)
                .or_else(|| sampling.values().next())
                .expect("table has at least one context");
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(deltas.len() - 1);
            let delta = deltas[idx];
            cur = cur.saturating_add_signed(delta);
            prev_delta = delta;
            last_rd = reuse_gen.access(cur);
            out.push(MemoryAccess::load(i, Address::new(cur * 64)));
        }
        out
    }
}

impl MissRatePredictor for TabSynth {
    fn name(&self) -> &'static str {
        self.variant.label()
    }

    fn predict_miss_rate(&self, trace: &Trace, config: &CacheConfig) -> f64 {
        let synthetic = self.synthesize(trace);
        let mut cache = Cache::new(*config);
        cache.run(&synthetic).stats.miss_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::true_miss_rate;

    fn cyclic(blocks: u64, n: usize) -> Trace {
        (0..n as u64).map(|i| MemoryAccess::load(i, Address::new((i % blocks) * 64))).collect()
    }

    fn streaming(n: usize) -> Trace {
        (0..n as u64).map(|i| MemoryAccess::load(i, Address::new(i * 64))).collect()
    }

    #[test]
    fn synthesize_preserves_length() {
        let t = cyclic(16, 1000);
        for variant in [TabVariant::Base, TabVariant::ReuseDistance, TabVariant::InContext] {
            let s = TabSynth::new(variant, 1).synthesize(&t);
            assert_eq!(s.len(), t.len(), "{variant:?}");
        }
    }

    #[test]
    fn streaming_trace_synthesis_streams() {
        // All deltas are +1, so every variant reproduces a stream.
        let t = streaming(2000);
        let s = TabSynth::new(TabVariant::Base, 2).synthesize(&t);
        let stats = s.stats();
        assert_eq!(stats.dominant_stride(), Some(64));
    }

    #[test]
    fn in_context_beats_base_on_phase_structured_trace() {
        // A trace alternating long streaming runs with tight loops: the
        // first-order model preserves run structure, the marginal one
        // scrambles it.
        let mut accesses = Vec::new();
        let mut instr = 0u64;
        for phase in 0..20u64 {
            if phase % 2 == 0 {
                for i in 0..500u64 {
                    accesses.push(MemoryAccess::load(
                        instr,
                        Address::new((100_000 + phase * 2000 + i) * 64),
                    ));
                    instr += 1;
                }
            } else {
                for i in 0..500u64 {
                    accesses.push(MemoryAccess::load(instr, Address::new((i % 4) * 64)));
                    instr += 1;
                }
            }
        }
        let trace: Trace = accesses.into();
        let config = CacheConfig::new(16, 4);
        let truth = true_miss_rate(&trace, &config);
        let base_err =
            (TabSynth::new(TabVariant::Base, 3).predict_miss_rate(&trace, &config) - truth).abs();
        let ic_err = (TabSynth::new(TabVariant::InContext, 3).predict_miss_rate(&trace, &config)
            - truth)
            .abs();
        assert!(
            ic_err <= base_err + 0.02,
            "IC ({ic_err:.3}) should not be clearly worse than Base ({base_err:.3})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let t = cyclic(32, 500);
        let a = TabSynth::new(TabVariant::ReuseDistance, 9).synthesize(&t);
        let b = TabSynth::new(TabVariant::ReuseDistance, 9).synthesize(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn labels() {
        assert_eq!(TabVariant::Base.label(), "Tab-Base");
        assert_eq!(TabVariant::ReuseDistance.label(), "Tab-RD");
        assert_eq!(TabVariant::InContext.label(), "Tab-IC");
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn rejects_tiny_trace() {
        TabSynth::new(TabVariant::Base, 0).synthesize(&Trace::new());
    }
}
