//! Quickstart: the full CacheBox pipeline on one benchmark.
//!
//! Generates a synthetic benchmark trace, simulates an L1 data cache for
//! ground truth, renders access/miss heatmaps, trains a small CB-GAN,
//! and compares the GAN-predicted hit rate against the simulator.
//!
//! Run with:
//! ```text
//! cargo run --release -p cachebox --example quickstart
//! ```

use cachebox::dataset::Pipeline;
use cachebox::experiments::train_cbgan;
use cachebox::Scale;
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};

fn main() {
    // A small scale keeps this example under a couple of minutes on CPU.
    let mut scale = Scale::small();
    scale.epochs = 60;
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);

    // 1. Build a tiny Polybench-like suite; train on most of it, hold one
    //    benchmark out.
    let suite = Suite::build(SuiteId::Polybench, 6, scale.seed);
    let split = suite.split_80_20(scale.seed);
    let held_out = &split.test[0];
    println!(
        "training on {} benchmarks, evaluating on {}",
        split.train.len(),
        held_out.display_name()
    );

    // 2. Ground truth: replay the held-out trace through the simulator.
    let true_rate = pipeline.true_hit_rate(held_out, &config);
    println!("simulated true hit rate: {:.2}%", true_rate * 100.0);

    // 3. Render training heatmap pairs and train CB-GAN.
    let samples = pipeline.training_samples(&split.train, &[config]);
    println!("training CB-GAN on {} heatmap pairs ({} epochs)...", samples.len(), scale.epochs);
    let (mut generator, history) = train_cbgan(&scale, &samples, true);
    if let Some(last) = history.last() {
        println!(
            "final losses: D={:.3} G_adv={:.3} G_L1={:.4}",
            last.d_loss, last.g_adv, last.g_l1
        );
    }

    // 4. Predict the held-out benchmark's hit rate from synthetic miss
    //    heatmaps (the paper's §4.4 recovery).
    let accuracy = pipeline.evaluate(&mut generator, held_out, &config, true, scale.batch_size);
    println!(
        "predicted hit rate: {:.2}%  (true {:.2}%, |diff| {:.2} pp)",
        accuracy.predicted_rate * 100.0,
        accuracy.true_rate * 100.0,
        accuracy.abs_pct_diff()
    );
}
