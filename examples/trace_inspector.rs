//! Trace inspector: explore the synthetic suites without any training.
//!
//! Generates one benchmark from each suite, prints trace statistics,
//! simulated hit rates across the paper's cache configurations, a
//! reuse-distance profile, and exports the first access/miss heatmap
//! pair as PGM images under `target/heatmaps/`.
//!
//! Run with:
//! ```text
//! cargo run --release -p cachebox --example trace_inspector
//! ```

use cachebox::dataset::Pipeline;
use cachebox::Scale;
use cachebox_heatmap::export::write_pgm;
use cachebox_sim::config::presets;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::ReuseHistogram;
use cachebox_workloads::{Suite, SuiteId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::small();
    let pipeline = Pipeline::new(&scale);
    let out_dir = std::path::Path::new("target/heatmaps");
    std::fs::create_dir_all(out_dir)?;

    for suite_id in SuiteId::ALL {
        let suite = Suite::build(suite_id, 3, scale.seed);
        let bench = &suite.benchmarks()[0];
        let trace = bench.generate(scale.trace_accesses);
        let stats = trace.stats();
        println!("=== {} :: {} ===", suite_id, bench.display_name());
        println!(
            "accesses: {}  stores: {:.1}%  footprint: {} blocks  span: {} KiB",
            stats.accesses,
            trace.store_fraction() * 100.0,
            trace.footprint_blocks(6).len(),
            stats.address_span() / 1024,
        );
        println!(
            "dominant stride: {:?} bytes ({:.0}% of transitions)",
            stats.dominant_stride(),
            stats.stride_regularity() * 100.0
        );

        // Hit rate across the paper's configurations.
        print!("hit rates:");
        for config in presets::rq2_train_configs().iter().chain(&[presets::l2_1024s_8w()]) {
            let mut cache = Cache::new(*config);
            let rate = cache.run(&trace).hit_rate();
            print!("  {}={:.1}%", config.name(), rate * 100.0);
        }
        println!();

        // Fully-associative miss curve from the reuse profile.
        let hist = ReuseHistogram::from_trace(&trace, 6);
        print!("LRU hit fraction by capacity:");
        for capacity in [64u64, 256, 1024, 4096] {
            print!("  {capacity}blk={:.1}%", hist.hit_fraction_for_capacity(capacity) * 100.0);
        }
        println!();

        // Export the first heatmap pair.
        let pairs = pipeline.heatmap_pairs(bench, &CacheConfig::new(64, 12));
        if let Some(pair) = pairs.first() {
            let base = out_dir.join(format!("{suite_id}"));
            let access_path = base.with_extension("access.pgm");
            let miss_path = base.with_extension("miss.pgm");
            write_pgm(std::fs::File::create(&access_path)?, &pair.access)?;
            write_pgm(std::fs::File::create(&miss_path)?, &pair.miss)?;
            println!(
                "wrote {} and {} ({} heatmaps total)",
                access_path.display(),
                miss_path.display(),
                pairs.len()
            );
        }
        println!();
    }
    Ok(())
}
