//! Prefetcher modelling (RQ7): heatmaps beyond caches.
//!
//! Attaches a next-line prefetcher to the L1, renders paired
//! access/prefetch heatmaps on a shared instruction timeline, trains
//! CB-GAN on the pairs, and scores the synthetic prefetch heatmaps with
//! MSE and SSIM.
//!
//! Run with:
//! ```text
//! cargo run --release -p cachebox --example prefetcher_modelling
//! ```

use cachebox::dataset::Pipeline;
use cachebox::experiments::train_cbgan;
use cachebox::Scale;
use cachebox_gan::data::Sample;
use cachebox_gan::infer::infer_batched;
use cachebox_gan::CacheParams;
use cachebox_metrics::image::{mse, ssim};
use cachebox_sim::{CacheConfig, NextLinePrefetcher, PrefetchTrigger};
use cachebox_workloads::{Suite, SuiteId};

fn main() {
    let mut scale = Scale::small();
    scale.epochs = 30;
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);
    let params = CacheParams::new(64, 12);
    let suite = Suite::build(SuiteId::Spec, 8, scale.seed);
    let split = suite.split_80_20(scale.seed);

    let pairs_for = |bench: &cachebox_workloads::Benchmark| {
        let mut prefetcher =
            NextLinePrefetcher::new(config.block_offset_bits, PrefetchTrigger::OnAccess);
        pipeline.prefetch_pairs(bench, &config, &mut prefetcher)
    };

    let samples: Vec<Sample> = split
        .train
        .iter()
        .flat_map(|b| {
            pairs_for(b).into_iter().map(|(access, prefetch)| Sample {
                access,
                miss: prefetch,
                params,
            })
        })
        .collect();
    println!("training CB-GAN on {} access/prefetch heatmap pairs...", samples.len());
    let (mut generator, _) = train_cbgan(&scale, &samples, true);

    let norm = pipeline.normalizer();
    println!("\n{:<28} {:>10} {:>8}", "benchmark", "MSE", "SSIM");
    for bench in &split.test {
        let pairs = pairs_for(bench);
        if pairs.is_empty() {
            continue;
        }
        let access: Vec<_> = pairs.iter().map(|(a, _)| a.clone()).collect();
        let synthetic =
            infer_batched(&mut generator, &access, Some(params), &norm, scale.batch_size);
        let (mut m, mut s) = (0.0, 0.0);
        for ((_, real), synth) in pairs.iter().zip(&synthetic) {
            m += mse(real, &synth.relu());
            s += ssim(real, &synth.relu());
        }
        let n = pairs.len() as f64;
        println!("{:<28} {:>10.4} {:>8.3}", bench.display_name(), m / n, s / n);
    }
    println!(
        "\nlow MSE and high SSIM indicate the prefetcher's filter was learned (paper Fig. 13)."
    );
}
