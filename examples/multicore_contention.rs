//! Multicore shared-cache contention (the conclusion's "investigating
//! multicore architectures" direction).
//!
//! Interleaves two benchmarks' traces as co-running processes, replays
//! the combined stream through a shared L2-sized cache, and compares
//! each program's hit rate against running alone — then renders the
//! shared-bus heatmap that a multicore CacheBox model would train on.
//!
//! Run with:
//! ```text
//! cargo run --release -p cachebox --example multicore_contention
//! ```

use cachebox::dataset::Pipeline;
use cachebox::Scale;
use cachebox_heatmap::export::write_pgm;
use cachebox_heatmap::HeatmapBuilder;
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::merge::{interleave, split_by_program};
use cachebox_workloads::{Suite, SuiteId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::small();
    let pipeline = Pipeline::new(&scale);
    let shared = CacheConfig::new(256, 8); // a small shared L2
    let suite = Suite::build(SuiteId::Spec, 6, scale.seed);
    let a = &suite.benchmarks()[0];
    let b = &suite.benchmarks()[2];
    let trace_a = a.generate(scale.trace_accesses);
    let trace_b = b.generate(scale.trace_accesses);

    // Solo runs.
    let solo = |t: &cachebox_trace::Trace| Cache::new(shared).run(t).hit_rate();
    let (solo_a, solo_b) = (solo(&trace_a), solo(&trace_b));

    // Co-run: interleave 4 accesses at a time (a coarse fetch quantum).
    let merged = interleave(&[trace_a, trace_b], 4);
    let mut cache = Cache::new(shared);
    let result = cache.run(&merged);
    // Attribute each access's outcome back to its program.
    let parts = split_by_program(&merged, 2);
    let mut hits = [0usize; 2];
    let mut counts = [0usize; 2];
    for (access, &hit) in merged.iter().zip(&result.hit_flags) {
        let which = (access.address.as_u64() >> 40) as usize;
        counts[which] += 1;
        hits[which] += hit as usize;
    }
    println!("shared cache: {} ({} KiB)", shared.name(), shared.capacity_bytes() / 1024);
    println!(
        "{:<28} solo {:>6.2}%  shared {:>6.2}%  (Δ {:+.2} pp)",
        a.display_name(),
        solo_a * 100.0,
        hits[0] as f64 / counts[0] as f64 * 100.0,
        (hits[0] as f64 / counts[0] as f64 - solo_a) * 100.0
    );
    println!(
        "{:<28} solo {:>6.2}%  shared {:>6.2}%  (Δ {:+.2} pp)",
        b.display_name(),
        solo_b * 100.0,
        hits[1] as f64 / counts[1] as f64 * 100.0,
        (hits[1] as f64 / counts[1] as f64 - solo_b) * 100.0
    );
    let _ = parts; // per-program streams, available for deeper analysis

    // The shared-bus heatmap pair a multicore CacheBox would learn from.
    let pairs = HeatmapBuilder::new(*pipeline.geometry()).build_pairs(&merged, &result.hit_flags);
    let out = std::path::Path::new("target/heatmaps");
    std::fs::create_dir_all(out)?;
    if let Some(pair) = pairs.first() {
        write_pgm(std::fs::File::create(out.join("multicore.access.pgm"))?, &pair.access)?;
        write_pgm(std::fs::File::create(out.join("multicore.miss.pgm"))?, &pair.miss)?;
        println!("wrote target/heatmaps/multicore.{{access,miss}}.pgm ({} pairs)", pairs.len());
    }
    Ok(())
}
