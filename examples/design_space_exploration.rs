//! Design-space exploration: the paper's motivating use-case (RQ2/RQ3).
//!
//! Trains a single cache-parameter-conditioned CB-GAN on four L1
//! configurations, then sweeps a *wider* design space — including
//! configurations never seen in training — and prints the predicted vs
//! simulated hit rate for a held-out benchmark at every point.
//!
//! Run with:
//! ```text
//! cargo run --release -p cachebox --example design_space_exploration
//! ```

use cachebox::dataset::Pipeline;
use cachebox::experiments::rq2;
use cachebox::Scale;
use cachebox_sim::CacheConfig;

fn main() {
    let mut scale = Scale::small();
    scale.epochs = 30;
    println!("training one CB-GAN on four L1 configurations...");
    let mut artifacts = rq2::train(&scale);
    let pipeline = Pipeline::new(&scale);
    let bench = artifacts.test[0].clone();
    println!("design-space sweep for held-out benchmark {}:\n", bench.display_name());
    println!("{:<14} {:>8} {:>8} {:>8} {:>7}", "config", "KiB", "true%", "pred%", "seen?");
    // The sweep: trained configs plus unseen sizes/associativities.
    let sweep = [
        (CacheConfig::new(32, 12), false),
        (CacheConfig::new(64, 12), true),
        (CacheConfig::new(128, 3), true),
        (CacheConfig::new(128, 6), true),
        (CacheConfig::new(128, 12), true),
        (CacheConfig::new(256, 6), false),
        (CacheConfig::new(256, 12), false),
    ];
    for (config, seen) in sweep {
        let record =
            pipeline.evaluate(&mut artifacts.generator, &bench, &config, true, scale.batch_size);
        println!(
            "{:<14} {:>8} {:>8.2} {:>8.2} {:>7}",
            config.name(),
            config.capacity_bytes() / 1024,
            record.true_rate * 100.0,
            record.predicted_rate * 100.0,
            if seen { "yes" } else { "NO" }
        );
    }
    println!(
        "\n'NO' rows are zero-shot predictions for configurations absent from training (RQ3)."
    );
}
