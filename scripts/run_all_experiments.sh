#!/usr/bin/env bash
# Regenerates every figure and table of the paper at the given scale
# (default: small). Results land in results/<artifact>.{txt,json}.
set -u
SCALE="${1:-small}"
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p cachebox-bench --bins
BINARIES=(
  fig07_rq1_suites
  fig08_rq2_configs
  fig09_rq3_unseen_configs
  fig10_rq4_levels
  fig11_rq5_batching
  fig12_rq6_scatter
  fig13_rq7_prefetch
  fig14_hitrate_histogram
  table1_baselines
  ext_policy_transfer
  ablation_window
  ablation_overlap
  ablation_lambda
  ablation_geometry
)
for bin in "${BINARIES[@]}"; do
  echo "=== $bin (scale: $SCALE) ==="
  EXTRA=""
  case "$bin" in
    ablation_*|ext_seed*) EXTRA="--epochs 30" ;;  # sweeps train several models
  esac
  ./target/release/"$bin" --scale "$SCALE" $EXTRA --out "results/$bin.json" \
    > "results/$bin.txt" 2>&1
  echo "    done: results/$bin.txt"
done
