//! End-to-end check that the parallel dataset pipeline is a pure
//! speedup: for any thread budget, `training_samples_with` must yield
//! *exactly* the sample set the serial path produces — same order,
//! bit-identical heatmaps — because training consumes samples
//! positionally and reproducibility is seeded through the pipeline.

use cachebox::{Pipeline, Scale};
use cachebox_nn::Parallelism;
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};

fn grid() -> (Pipeline, Vec<cachebox_workloads::Benchmark>, Vec<CacheConfig>) {
    let scale = Scale::tiny();
    let pipeline = Pipeline::new(&scale);
    let suite = Suite::build(SuiteId::Polybench, 4, 9);
    let benches = suite.benchmarks().to_vec();
    let configs = vec![CacheConfig::new(16, 2), CacheConfig::new(32, 4), CacheConfig::new(64, 8)];
    (pipeline, benches, configs)
}

#[test]
fn parallel_training_samples_equal_serial_for_all_budgets() {
    let (pipeline, benches, configs) = grid();
    let serial = pipeline.training_samples_with(Parallelism::serial(), &benches, &configs);
    assert_eq!(serial.len(), benches.len() * configs.len());
    for threads in [2, 3, 5, 16] {
        let parallel =
            pipeline.training_samples_with(Parallelism::new(threads), &benches, &configs);
        assert_eq!(parallel, serial, "sample set diverged at {threads} threads");
    }
}

#[test]
fn installed_budget_matches_explicit_budget() {
    let (pipeline, benches, configs) = grid();
    let serial = pipeline.training_samples_with(Parallelism::serial(), &benches, &configs);
    Parallelism::new(4).install();
    let via_global = pipeline.training_samples(&benches, &configs);
    Parallelism::serial().install();
    assert_eq!(via_global, serial);
}

#[test]
fn parallel_evaluation_sweep_matches_serial() {
    let (pipeline, benches, configs) = grid();
    let scale = Scale::tiny();
    let mut generator = cachebox_gan::UNetGenerator::new(
        cachebox_gan::UNetConfig::for_image_size(scale.image_size(), scale.ngf)
            .with_param_features(2),
        scale.seed,
    );
    let config = configs[0];
    let serial: Vec<_> = benches
        .iter()
        .map(|b| pipeline.evaluate(&mut generator, b, &config, true, scale.batch_size))
        .collect();
    let parallel = pipeline.evaluate_sweep(
        Parallelism::new(4),
        &mut generator,
        &benches,
        &config,
        true,
        scale.batch_size,
    );
    assert_eq!(parallel, serial);
}
