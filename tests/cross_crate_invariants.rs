//! Property-based invariants that span multiple CacheBox crates.
//!
//! The strongest check here cross-validates two independently implemented
//! components: the set-associative LRU simulator (`cachebox-sim`) against
//! the exact reuse-distance engine (`cachebox-trace`). For LRU, an access
//! hits **iff** the number of distinct blocks mapping to the same set
//! since the previous access to that block is smaller than the
//! associativity — so per-set reuse distances fully determine hit/miss.

use cachebox_heatmap::{HeatmapBuilder, HeatmapGeometry};
use cachebox_sim::{Cache, CacheConfig};
use cachebox_trace::{Address, MemoryAccess, ReuseDistanceEngine, Trace, INFINITE_DISTANCE};
use proptest::prelude::*;

/// Reference LRU hit/miss oracle built on per-set reuse distances.
fn reuse_distance_oracle(trace: &Trace, config: &CacheConfig) -> Vec<bool> {
    let mut engines: Vec<ReuseDistanceEngine> =
        (0..config.sets).map(|_| ReuseDistanceEngine::new()).collect();
    trace
        .iter()
        .map(|a| {
            let block = a.address.block(config.block_offset_bits);
            let set = config.set_index_of_block(block);
            let distance = engines[set].access(block);
            distance != INFINITE_DISTANCE && distance < config.ways as u64
        })
        .collect()
}

fn arbitrary_trace(max_len: usize, max_block: u64) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0..max_block, prop::bool::ANY), 1..max_len).prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, (block, store))| {
                let addr = Address::new(block * 64 + (i as u64 % 64));
                if store {
                    MemoryAccess::store(i as u64, addr)
                } else {
                    MemoryAccess::load(i as u64, addr)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator's per-access hit flags match the reuse-distance
    /// oracle exactly, for arbitrary traces and LRU geometries.
    #[test]
    fn lru_simulator_matches_reuse_distance_oracle(
        trace in arbitrary_trace(400, 256),
        sets_log2 in 0u32..5,
        ways in 1usize..9,
    ) {
        let config = CacheConfig::new(1 << sets_log2, ways);
        let mut cache = Cache::new(config);
        let result = cache.run(&trace);
        let oracle = reuse_distance_oracle(&trace, &config);
        prop_assert_eq!(&result.hit_flags, &oracle);
    }

    /// Overlap-deduplicated pixel sums equal the trace length for any
    /// geometry and overlap — the invariant §4.4's hit-rate recovery
    /// rests on.
    #[test]
    fn heatmap_dedup_sum_equals_trace_length(
        trace in arbitrary_trace(600, 4096),
        height_log2 in 2u32..6,
        width in 4usize..24,
        window in 1u64..9,
        overlap in 0.0f64..0.8,
    ) {
        let geometry = HeatmapGeometry::new(1 << height_log2, width, window)
            .with_overlap(overlap);
        let maps = HeatmapBuilder::new(geometry).build(&trace);
        let total = cachebox_heatmap::hitrate::dedup_pixel_sum(&maps, &geometry);
        prop_assert_eq!(total as usize, trace.len());
    }

    /// Hit rates recovered from heatmap pairs agree with the simulator's
    /// counters to floating-point precision.
    #[test]
    fn heatmap_hit_rate_matches_simulator(
        trace in arbitrary_trace(400, 512),
        ways in 1usize..5,
    ) {
        let config = CacheConfig::new(16, ways);
        let mut cache = Cache::new(config);
        let result = cache.run(&trace);
        let geometry = HeatmapGeometry::new(16, 8, 4).with_overlap(0.3);
        let pairs = HeatmapBuilder::new(geometry).build_pairs(&trace, &result.hit_flags);
        let summary = cachebox_heatmap::hitrate::hit_rate_from_pairs(&pairs, &geometry);
        prop_assert!((summary.hit_rate() - result.hit_rate()).abs() < 1e-9);
    }

    /// Growing associativity (at fixed set count) never hurts LRU hit
    /// counts on any trace (LRU's stack inclusion property per set).
    #[test]
    fn lru_hits_monotone_in_ways(
        trace in arbitrary_trace(300, 128),
        sets_log2 in 0u32..4,
    ) {
        let mut prev_hits = 0;
        for ways in [1usize, 2, 4, 8] {
            let mut cache = Cache::new(CacheConfig::new(1 << sets_log2, ways));
            let hits = cache.run(&trace).stats.hits;
            prop_assert!(hits >= prev_hits, "ways {ways}: {hits} < {prev_hits}");
            prev_hits = hits;
        }
    }

    /// Miss traces partition: misses + hits = accesses, and replaying
    /// the miss trace against an infinite cache yields all-cold blocks
    /// exactly once per distinct block of the miss trace.
    #[test]
    fn miss_trace_partitions_accesses(
        trace in arbitrary_trace(300, 64),
    ) {
        let config = CacheConfig::new(4, 2);
        let mut cache = Cache::new(config);
        let result = cache.run(&trace);
        let misses = result.miss_trace(&trace);
        let hits = result.hit_trace(&trace);
        prop_assert_eq!(misses.len() + hits.len(), trace.len());
        prop_assert_eq!(misses.len() as u64, result.stats.misses);
    }
}
