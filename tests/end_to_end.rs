//! End-to-end integration tests: the full benchmark → simulator →
//! heatmap → CB-GAN → metric pipeline at tiny scale, plus checkpoint
//! round-trips and determinism guarantees.

use cachebox::dataset::Pipeline;
use cachebox::experiments::train_cbgan;
use cachebox::Scale;
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::data::Normalizer;
use cachebox_gan::infer::infer_batched;
use cachebox_gan::CacheParams;
use cachebox_heatmap::Heatmap;
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};

fn tiny() -> Scale {
    Scale::tiny().with_epochs(1)
}

#[test]
fn full_pipeline_trains_and_predicts() {
    let scale = tiny();
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);
    let suite = Suite::build(SuiteId::Polybench, 4, scale.seed);
    let split = suite.split_80_20(scale.seed);
    assert!(!split.train.is_empty() && !split.test.is_empty());
    let samples = pipeline.training_samples(&split.train, &[config]);
    assert!(!samples.is_empty());
    let (mut generator, history) = train_cbgan(&scale, &samples, true);
    assert_eq!(history.len(), scale.epochs);
    for bench in &split.test {
        let record = pipeline.evaluate(&mut generator, bench, &config, true, 4);
        assert!((0.0..=1.0).contains(&record.true_rate), "{record:?}");
        assert!((0.0..=1.0).contains(&record.predicted_rate), "{record:?}");
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let scale = tiny();
    let run_once = || {
        let pipeline = Pipeline::new(&scale);
        let config = CacheConfig::new(64, 12);
        let suite = Suite::build(SuiteId::Spec, 4, scale.seed);
        let samples = pipeline.training_samples(suite.benchmarks(), &[config]);
        let (mut generator, _) = train_cbgan(&scale, &samples, true);
        pipeline.evaluate(&mut generator, &suite.benchmarks()[0], &config, true, 4).predicted_rate
    };
    assert_eq!(run_once(), run_once(), "same seed must give identical predictions");
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let scale = tiny();
    let pipeline = Pipeline::new(&scale);
    let config = CacheConfig::new(64, 12);
    let suite = Suite::build(SuiteId::Ligra, 3, scale.seed);
    let samples = pipeline.training_samples(suite.benchmarks(), &[config]);
    let (mut generator, _) = train_cbgan(&scale, &samples, true);

    let dir = std::env::temp_dir().join("cachebox_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e_model.json");
    Checkpoint::capture(&mut generator).save(&path).unwrap();
    let mut restored = Checkpoint::load(&path).unwrap().restore().unwrap();
    std::fs::remove_file(&path).ok();

    let bench = &suite.benchmarks()[0];
    let a = pipeline.evaluate(&mut generator, bench, &config, true, 4);
    let b = pipeline.evaluate(&mut restored, bench, &config, true, 4);
    assert_eq!(a.predicted_rate, b.predicted_rate);
}

#[test]
fn conditioning_differentiates_configurations_after_training() {
    // A model trained on two very different configurations should
    // produce different synthetic miss maps for them on the same input.
    let scale = tiny();
    let pipeline = Pipeline::new(&scale);
    let configs = [CacheConfig::new(16, 1), CacheConfig::new(256, 8)];
    let suite = Suite::build(SuiteId::Spec, 4, scale.seed);
    let samples = pipeline.training_samples(suite.benchmarks(), &configs);
    let (mut generator, _) = train_cbgan(&scale, &samples, true);
    let pairs = pipeline.heatmap_pairs(&suite.benchmarks()[0], &configs[0]);
    let access: Vec<Heatmap> = pairs.iter().map(|p| p.access.clone()).collect();
    let norm = Normalizer::new(scale.geometry.window);
    let small = infer_batched(&mut generator, &access, Some(CacheParams::new(16, 1)), &norm, 4);
    let large = infer_batched(&mut generator, &access, Some(CacheParams::new(256, 8)), &norm, 4);
    let diff: f64 = small.iter().zip(&large).map(|(a, b)| a.mse(b)).sum::<f64>();
    assert!(diff > 0.0, "cache parameters must influence generated maps");
}

#[test]
fn hierarchy_streams_feed_the_gan_pipeline() {
    let scale = tiny();
    let pipeline = Pipeline::new(&scale);
    let hierarchy = cachebox_sim::HierarchyConfig::paper_default();
    let suite = Suite::build(SuiteId::Spec, 2, scale.seed);
    let per_level = pipeline.hierarchy_pairs(&suite.benchmarks()[0], &hierarchy);
    assert_eq!(per_level.len(), 3);
    // L1 has data; deeper levels shrink but stay structurally valid.
    assert!(!per_level[0].is_empty());
    for (level, pairs) in per_level.iter().enumerate() {
        for p in pairs {
            assert!(
                p.miss.pixel_sum() <= p.access.pixel_sum(),
                "L{} miss exceeds access",
                level + 1
            );
        }
    }
}
