//! Accuracy sanity tests for the Table 1 baselines on realistic
//! workloads: profile-based predictors must stay within loose error
//! bounds of the exact simulator, and the fidelity ordering of the
//! tabular variants must be plausible.

use cachebox_baselines::{true_miss_rate, Hrd, MissRatePredictor, Stm, TabSynth, TabVariant};
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};

const TRACE_LEN: usize = 12_000;

fn mean_abs_error(predictor: &dyn MissRatePredictor, suite: SuiteId, count: usize) -> f64 {
    let suite = Suite::build(suite, count, 11);
    let config = CacheConfig::new(64, 12);
    let mut total = 0.0;
    for bench in suite.benchmarks() {
        let trace = bench.generate(TRACE_LEN);
        let truth = true_miss_rate(&trace, &config);
        let predicted = predictor.predict_miss_rate(&trace, &config);
        total += (predicted - truth).abs();
    }
    total / suite.benchmarks().len() as f64
}

#[test]
fn hrd_is_accurate_on_spec_like_workloads() {
    let err = mean_abs_error(&Hrd::new(), SuiteId::Spec, 6);
    assert!(err < 0.15, "HRD mean abs miss-rate error {err:.3}");
}

#[test]
fn stm_is_accurate_on_spec_like_workloads() {
    let err = mean_abs_error(&Stm::new(5), SuiteId::Spec, 6);
    assert!(err < 0.25, "STM mean abs miss-rate error {err:.3}");
}

#[test]
fn hrd_handles_regular_polybench_kernels() {
    let err = mean_abs_error(&Hrd::new(), SuiteId::Polybench, 5);
    assert!(err < 0.20, "HRD polybench error {err:.3}");
}

#[test]
fn tabular_variants_all_produce_bounded_predictions() {
    for variant in [TabVariant::Base, TabVariant::ReuseDistance, TabVariant::InContext] {
        let err = mean_abs_error(&TabSynth::new(variant, 7), SuiteId::Spec, 5);
        assert!((0.0..=1.0).contains(&err), "{} produced error {err}", variant.label());
    }
}

#[test]
fn conditioned_tabular_is_not_worse_than_base_on_average() {
    // Table 1's ordering: conditioning should help (or at least not
    // clearly hurt) across a small suite.
    let base = mean_abs_error(&TabSynth::new(TabVariant::Base, 3), SuiteId::Spec, 6);
    let ic = mean_abs_error(&TabSynth::new(TabVariant::InContext, 3), SuiteId::Spec, 6);
    assert!(ic <= base + 0.10, "in-context ({ic:.3}) should track base ({base:.3}) or better");
}

#[test]
fn exact_simulation_beats_every_profile_baseline() {
    // The "CBox vs traditional" gap exists because profiles are lossy:
    // verify the baselines do incur nonzero error somewhere, i.e. our
    // substitutes are not accidentally exact (which would invalidate the
    // Table 1 comparison).
    let suite = Suite::build(SuiteId::Spec, 8, 13);
    let config = CacheConfig::new(64, 12);
    let mut any_hrd = 0.0f64;
    let mut any_stm = 0.0f64;
    for bench in suite.benchmarks() {
        let trace = bench.generate(TRACE_LEN);
        let truth = true_miss_rate(&trace, &config);
        any_hrd = any_hrd.max((Hrd::new().predict_miss_rate(&trace, &config) - truth).abs());
        any_stm = any_stm.max((Stm::new(1).predict_miss_rate(&trace, &config) - truth).abs());
    }
    assert!(any_hrd > 1e-4, "HRD is suspiciously exact");
    assert!(any_stm > 1e-4, "STM is suspiciously exact");
}
