//! End-to-end tests of the evaluation service: boot on an ephemeral
//! socket, drive real clients over the wire, and check the two
//! guarantees the service makes — served answers are bitwise identical
//! to the in-process `evaluate_sweep` path, and a checkpoint reload
//! swaps arenas atomically (a response is never torn across epochs).

use cachebox::{Pipeline, Scale};
use cachebox_gan::checkpoint::Checkpoint;
use cachebox_gan::infer::FrozenGenerator;
use cachebox_gan::{UNetConfig, UNetGenerator};
use cachebox_metrics::BenchmarkAccuracy;
use cachebox_nn::parallel::Parallelism;
use cachebox_serve::{
    Client, ErrorKind, EvalRequest, Listener, Request, Response, Server, ServerConfig, WorkloadSpec,
};
use cachebox_sim::CacheConfig;
use cachebox_workloads::{Suite, SuiteId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn generator(seed: u64) -> UNetGenerator {
    let scale = Scale::tiny();
    let config = UNetConfig::for_image_size(scale.image_size(), scale.ngf).with_param_features(2);
    UNetGenerator::new(config, seed)
}

fn frozen(seed: u64) -> FrozenGenerator {
    FrozenGenerator::of(&mut generator(seed))
}

/// Boots a service on an ephemeral TCP port; returns a reload/arena
/// handle, the dial address, and the serving thread's join handle.
fn start(config: ServerConfig, seed: u64) -> (Arc<Server>, String, std::thread::JoinHandle<()>) {
    let listener = Listener::bind("tcp:127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr();
    let server = Arc::new(Server::new(config, frozen(seed)));
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run(listener).expect("serve loop"))
    };
    (server, addr, handle)
}

fn eval_request(count: usize) -> EvalRequest {
    EvalRequest {
        benchmarks: (0..count)
            .map(|index| WorkloadSpec { suite: "polybench".into(), index, seed: 3 })
            .collect(),
        sets: 16,
        ways: 2,
        batch_size: Some(4),
        deadline_ms: Some(30_000),
    }
}

/// The in-process reference: the exact path a local caller would run.
fn local_sweep(seed: u64, count: usize) -> Vec<BenchmarkAccuracy> {
    let pipeline = Pipeline::new(&Scale::tiny());
    let suite = Suite::build(SuiteId::Polybench, count, 3);
    let benches = suite.benchmarks().to_vec();
    pipeline.evaluate_sweep(
        Parallelism::new(2),
        &mut generator(seed),
        &benches,
        &CacheConfig::new(16, 2),
        true,
        4,
    )
}

fn assert_bitwise_eq(served: &[BenchmarkAccuracy], local: &[BenchmarkAccuracy]) {
    assert_eq!(served.len(), local.len());
    for (s, l) in served.iter().zip(local) {
        assert_eq!(s.name, l.name);
        assert_eq!(s.true_rate.to_bits(), l.true_rate.to_bits(), "{}", s.name);
        assert_eq!(s.predicted_rate.to_bits(), l.predicted_rate.to_bits(), "{}", s.name);
    }
}

#[test]
fn served_answers_match_in_process_sweep_bitwise() {
    let (server, addr, handle) = start(ServerConfig::new(Scale::tiny()), 1);
    let boot = server.arena();
    let mut client = Client::connect(&addr).expect("connect");

    match client.status().expect("status") {
        Response::Status(s) => {
            assert_eq!(s.epoch, 0);
            assert_eq!(s.fingerprint, boot.fingerprint);
            assert!(!s.draining);
        }
        other => panic!("unexpected status reply {other:?}"),
    }

    match client.eval(eval_request(2)).expect("eval") {
        Response::Eval { epoch, fingerprint, results } => {
            assert_eq!(epoch, 0);
            assert_eq!(fingerprint, boot.fingerprint);
            assert_bitwise_eq(&results, &local_sweep(1, 2));
        }
        other => panic!("unexpected eval reply {other:?}"),
    }

    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
}

#[test]
fn concurrent_clients_each_get_exact_answers() {
    let mut config = ServerConfig::new(Scale::tiny());
    config.workers = 3;
    let (_server, addr, handle) = start(config, 1);

    // Per-workload expectation, computed once up front.
    let expected: HashMap<usize, Vec<BenchmarkAccuracy>> =
        (1..=2).map(|count| (count, local_sweep(1, count))).collect();

    crossbeam::thread::scope(|s| {
        for t in 0..4 {
            let addr = &addr;
            let expected = &expected;
            s.spawn(move |_| {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..2 {
                    let count = 1 + (t + round) % 2;
                    match client.eval(eval_request(count)).expect("eval") {
                        Response::Eval { results, .. } => {
                            assert_bitwise_eq(&results, &expected[&count]);
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                }
            });
        }
    })
    .expect("client threads");

    let mut client = Client::connect(&addr).expect("connect");
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
}

/// The tentpole invariant: while reloads swap arenas in a loop, every
/// response must be *entirely* from one arena — the fingerprint it
/// names must reproduce that arena's bitwise-exact results, and no
/// request may be dropped.
#[test]
fn midflight_reload_never_tears_a_response() {
    let mut config = ServerConfig::new(Scale::tiny());
    config.workers = 2;
    let (server, addr, handle) = start(config, 1);

    let fp_by_seed: HashMap<u64, u64> =
        [(1u64, frozen(1).fingerprint()), (2u64, frozen(2).fingerprint())].into();
    assert_ne!(fp_by_seed[&1], fp_by_seed[&2], "seeds must produce distinct arenas");
    let expected: HashMap<u64, Vec<BenchmarkAccuracy>> =
        [(fp_by_seed[&1], local_sweep(1, 1)), (fp_by_seed[&2], local_sweep(2, 1))].into();

    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|s| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let addr = &addr;
                let stop = &stop;
                let expected = &expected;
                s.spawn(move |_| {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut served = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        match client.eval(eval_request(1)).expect("eval") {
                            Response::Eval { fingerprint, results, .. } => {
                                let want = expected.get(&fingerprint).unwrap_or_else(|| {
                                    panic!("response from unknown arena {fingerprint:016x}")
                                });
                                assert_bitwise_eq(&results, want);
                                served += 1;
                            }
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                    served
                })
            })
            .collect();

        // Swap arenas while the readers hammer the service. The swap
        // path here is the same `ArenaSwap::install` a wire reload
        // takes after checkpoint validation.
        for round in 0..12 {
            let seed = 1 + (round % 2);
            let epoch = server.install(frozen(seed));
            assert_eq!(epoch.fingerprint, fp_by_seed[&seed]);
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u32 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        assert!(total > 0, "readers must have been answered during the swap storm");
    })
    .expect("scope");

    let mut client = Client::connect(&addr).expect("connect");
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
}

/// Wire-level reload: write a real checkpoint, swap it in over the
/// socket, and require subsequent answers to come from the new arena.
/// Skipped (without failing) when checkpoint serialization is
/// unavailable in the build environment.
#[test]
fn wire_reload_installs_validated_checkpoint() {
    let dir = std::env::temp_dir().join("cachebox_serve_e2e_reload");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("next.json");
    if Checkpoint::capture(&mut generator(2)).save(&path).is_err() {
        eprintln!("checkpoint serialization unavailable; skipping wire reload leg");
        return;
    }

    let (_server, addr, handle) = start(ServerConfig::new(Scale::tiny()), 1);
    let mut client = Client::connect(&addr).expect("connect");
    let new_fp = frozen(2).fingerprint();

    match client.reload(&path.display().to_string()).expect("reload") {
        Response::Reload { epoch, fingerprint } => {
            assert_eq!(epoch, 1);
            assert_eq!(fingerprint, new_fp);
        }
        other => panic!("unexpected reload reply {other:?}"),
    }
    match client.eval(eval_request(1)).expect("eval") {
        Response::Eval { epoch, fingerprint, results } => {
            assert_eq!(epoch, 1);
            assert_eq!(fingerprint, new_fp);
            assert_bitwise_eq(&results, &local_sweep(2, 1));
        }
        other => panic!("unexpected eval reply {other:?}"),
    }

    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
    std::fs::remove_file(&path).ok();
}

#[test]
fn shutdown_is_acknowledged_and_drains() {
    let (_server, addr, handle) = start(ServerConfig::new(Scale::tiny()), 1);
    let mut client = Client::connect(&addr).expect("connect");

    // A request answered before the drain proves the service was live.
    assert!(matches!(client.status().expect("status"), Response::Status(_)));
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    // The accept loop exits and workers drain.
    handle.join().expect("server thread");

    // The still-open connection keeps answering — with typed
    // shutting_down errors, not disconnects.
    match client.eval(eval_request(1)).expect("post-shutdown eval") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
        other => panic!("unexpected reply {other:?}"),
    }
    match client.call(&Request::Reload { path: "/nonexistent".into() }).expect("reload") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_works() {
    let dir = std::env::temp_dir().join("cachebox_serve_e2e_unix");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("svc.sock");
    let addr = format!("unix:{}", path.display());

    let listener = Listener::bind(&addr).expect("bind unix socket");
    let server = Arc::new(Server::new(ServerConfig::new(Scale::tiny()), frozen(1)));
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run(listener).expect("serve loop"))
    };

    let mut client = Client::connect(&addr).expect("connect over unix socket");
    match client.eval(eval_request(1)).expect("eval") {
        Response::Eval { results, .. } => assert_bitwise_eq(&results, &local_sweep(1, 1)),
        other => panic!("unexpected reply {other:?}"),
    }
    assert!(matches!(client.shutdown().expect("shutdown"), Response::Shutdown));
    handle.join().expect("server thread");
    std::fs::remove_file(&path).ok();
}
